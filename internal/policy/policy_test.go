package policy

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/mat"
	"repro/internal/nn"
)

func TestCostProperties(t *testing.T) {
	if Cost(5e-4, 0) != 0 {
		t.Fatal("zero delay must cost 0")
	}
	if Cost(5e-4, -10) != 0 {
		t.Fatal("negative delay must be clamped")
	}
	// Paper example: α=5e-4, cloud delay 504.5 ms → C ≈ 0.2014.
	if got := Cost(5e-4, 504.5); math.Abs(got-0.2014) > 1e-3 {
		t.Fatalf("Cost(5e-4, 504.5) = %g, want ≈0.2014", got)
	}
	// Monotone increasing, bounded by 1.
	prev := -1.0
	for _, d := range []float64{1, 10, 100, 1000, 1e6} {
		c := Cost(5e-4, d)
		if c <= prev || c >= 1 {
			t.Fatalf("Cost not monotone/bounded at %g: %g", d, c)
		}
		prev = c
	}
}

func TestRewardMatchesTableII(t *testing.T) {
	// Univariate Table II rows: reward_sum = (acc − C(delay))·52.
	rows := []struct {
		acc, delay, want float64
	}{
		{0.9368, 12.4, 48.39},   // IoT Device
		{0.9863, 257.43, 45.36}, // Edge
		{0.9946, 504.50, 41.24}, // Cloud
	}
	for _, r := range rows {
		per := r.acc - Cost(5e-4, r.delay)
		if got := per * 52; math.Abs(got-r.want) > 0.15 {
			t.Fatalf("summed reward for acc=%g delay=%g: %g, want ≈%g", r.acc, r.delay, got, r.want)
		}
	}
}

func TestRewardCorrectness(t *testing.T) {
	if got := Reward(true, 5e-4, 0); got != 1 {
		t.Fatalf("Reward(correct, no delay) = %g, want 1", got)
	}
	if got := Reward(false, 5e-4, 0); got != 0 {
		t.Fatalf("Reward(wrong, no delay) = %g, want 0", got)
	}
	if !(Reward(true, 5e-4, 100) < 1) {
		t.Fatal("delay must reduce reward")
	}
}

func TestNewNetworkValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := NewNetwork(0, 10, 3, rng); err == nil {
		t.Fatal("zero state dim must be rejected")
	}
	if _, err := NewNetwork(4, 10, 1, rng); err == nil {
		t.Fatal("single action must be rejected")
	}
	net, err := NewNetwork(4, 100, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Paper architecture: 100 hidden units, 3 outputs.
	want := 4*100 + 100 + 100*3 + 3
	if got := net.NumParams(); got != want {
		t.Fatalf("NumParams = %d, want %d", got, want)
	}
	if net.Flops() != int64(2*4*100+2*100*3) {
		t.Fatalf("Flops = %d", net.Flops())
	}
}

func TestProbsIsDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	net, err := NewNetwork(6, 20, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		z := make([]float64, 6)
		for i := range z {
			z[i] = r.NormFloat64() * 3
		}
		probs, err := net.Probs(z)
		if err != nil {
			return false
		}
		if len(probs) != 3 {
			return false
		}
		var sum float64
		for _, p := range probs {
			if p < 0 || p > 1 {
				return false
			}
			sum += p
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSampleFollowsDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	net, err := NewNetwork(2, 10, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	z := []float64{0.5, -0.5}
	probs, err := net.Probs(z)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 3)
	const n = 20000
	for i := 0; i < n; i++ {
		a, _, err := net.Sample(z, rng)
		if err != nil {
			t.Fatal(err)
		}
		counts[a]++
	}
	for a, p := range probs {
		emp := float64(counts[a]) / n
		if math.Abs(emp-p) > 0.02 {
			t.Fatalf("action %d: empirical %g vs π %g", a, emp, p)
		}
	}
}

func TestGreedyMatchesArgmax(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	net, err := NewNetwork(3, 8, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	z := []float64{1, 0, -1}
	probs, err := net.Probs(z)
	if err != nil {
		t.Fatal(err)
	}
	a, err := net.Greedy(z)
	if err != nil {
		t.Fatal(err)
	}
	if a != mat.ArgMax(probs) {
		t.Fatalf("Greedy = %d, argmax = %d", a, mat.ArgMax(probs))
	}
}

func TestNewTrainerValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	net, _ := NewNetwork(2, 8, 3, rng)
	if _, err := NewTrainer(nil, nn.NewAdam(1e-3), 0.1); err == nil {
		t.Fatal("nil network must be rejected")
	}
	if _, err := NewTrainer(net, nil, 0.1); err == nil {
		t.Fatal("nil optimiser must be rejected")
	}
	if _, err := NewTrainer(net, nn.NewAdam(1e-3), 0); err == nil {
		t.Fatal("zero beta must be rejected")
	}
}

// TestReinforceLearnsContextualBandit is the core convergence test: in a
// 2-context bandit where context decides which arm pays, the trained policy
// must learn the context→arm mapping.
func TestReinforceLearnsContextualBandit(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	net, err := NewNetwork(2, 16, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := NewTrainer(net, nn.NewAdam(5e-3), 0.05)
	if err != nil {
		t.Fatal(err)
	}
	// Context [1,0] pays on arm 0; [0,1] pays on arm 2; arm 1 pays a little
	// everywhere (a tempting but suboptimal default).
	rewardFor := func(ctx []float64, a int) float64 {
		switch {
		case ctx[0] == 1 && a == 0:
			return 1
		case ctx[1] == 1 && a == 2:
			return 1
		case a == 1:
			return 0.3
		default:
			return 0
		}
	}
	contexts := [][]float64{{1, 0}, {0, 1}}
	for i := 0; i < 4000; i++ {
		ctx := contexts[rng.Intn(2)]
		if _, _, err := tr.Step(ctx, func(a int) (float64, error) {
			return rewardFor(ctx, a), nil
		}, rng); err != nil {
			t.Fatal(err)
		}
	}
	a0, err := net.Greedy(contexts[0])
	if err != nil {
		t.Fatal(err)
	}
	a1, err := net.Greedy(contexts[1])
	if err != nil {
		t.Fatal(err)
	}
	if a0 != 0 || a1 != 2 {
		t.Fatalf("policy learned (%d, %d), want (0, 2)", a0, a1)
	}
	// Baseline should have converged near the optimal reward.
	if tr.Baseline() < 0.6 {
		t.Fatalf("baseline = %g, want near 1", tr.Baseline())
	}
}

func TestTrainerRejectsBadRewards(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	net, _ := NewNetwork(2, 8, 3, rng)
	tr, _ := NewTrainer(net, nn.NewAdam(1e-3), 0.1)
	if _, _, err := tr.Step([]float64{1, 0}, func(int) (float64, error) {
		return math.NaN(), nil
	}, rng); err == nil {
		t.Fatal("NaN reward must be rejected")
	}
}

// TestReinforcementComparisonSpeedsConvergence is the ablation the paper
// motivates: with the baseline, REINFORCE should reach a good policy in
// fewer steps than without (measured by mean reward over the last window).
func TestReinforcementComparisonSpeedsConvergence(t *testing.T) {
	run := func(useBaseline bool) float64 {
		rng := rand.New(rand.NewSource(42))
		net, err := NewNetwork(2, 16, 3, rng)
		if err != nil {
			t.Fatal(err)
		}
		beta := 1e-9 // effectively no baseline update
		if useBaseline {
			beta = 0.05
		}
		tr, err := NewTrainer(net, nn.NewAdam(2e-3), beta)
		if err != nil {
			t.Fatal(err)
		}
		if !useBaseline {
			tr.baseline = 0 // fixed zero baseline ⇒ plain REINFORCE
			tr.initialised = true
		}
		contexts := [][]float64{{1, 0}, {0, 1}}
		var recent float64
		const steps = 1500
		for i := 0; i < steps; i++ {
			ctx := contexts[rng.Intn(2)]
			_, r, err := tr.Step(ctx, func(a int) (float64, error) {
				// Rewards offset by +5 so the un-baselined gradient is noisy.
				if (ctx[0] == 1 && a == 0) || (ctx[1] == 1 && a == 2) {
					return 6, nil
				}
				return 5, nil
			}, rng)
			if err != nil {
				t.Fatal(err)
			}
			if i >= steps-300 {
				recent += r
			}
		}
		return recent / 300
	}
	with := run(true)
	without := run(false)
	if with <= without {
		t.Fatalf("baseline did not help: with %g vs without %g", with, without)
	}
}

// TestStepBatchSingletonMatchesStep pins StepBatch to Step: with batch
// size 1 the two paths draw the same rng stream and apply the same update,
// so two identically seeded trainers must stay numerically identical.
func TestStepBatchSingletonMatchesStep(t *testing.T) {
	build := func() (*Network, *Trainer) {
		rng := rand.New(rand.NewSource(21))
		net, err := NewNetwork(2, 8, 3, rng)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := NewTrainer(net, nn.NewAdam(2e-3), 0.05)
		if err != nil {
			t.Fatal(err)
		}
		return net, tr
	}
	netA, trA := build()
	netB, trB := build()
	rngA := rand.New(rand.NewSource(33))
	rngB := rand.New(rand.NewSource(33))
	reward := func(a int) float64 { return float64(a) * 0.5 }
	for i := 0; i < 50; i++ {
		z := []float64{float64(i%2) - 0.5, 0.25}
		aA, rA, err := trA.Step(z, func(a int) (float64, error) { return reward(a), nil }, rngA)
		if err != nil {
			t.Fatal(err)
		}
		acts, rews, err := trB.StepBatch([][]float64{z}, func(_, a int) (float64, error) { return reward(a), nil }, 1, rngB)
		if err != nil {
			t.Fatal(err)
		}
		if aA != acts[0] || rA != rews[0] {
			t.Fatalf("step %d: Step (%d, %g) vs StepBatch (%d, %g)", i, aA, rA, acts[0], rews[0])
		}
	}
	pa, pb := netA.Params(), netB.Params()
	for i := range pa {
		for j, v := range pa[i].Value.Data {
			if v != pb[i].Value.Data[j] {
				t.Fatalf("param %s[%d] diverged: %g vs %g", pa[i].Name, j, v, pb[i].Value.Data[j])
			}
		}
	}
	if trA.Baseline() != trB.Baseline() {
		t.Fatalf("baselines diverged: %g vs %g", trA.Baseline(), trB.Baseline())
	}
}

// TestStepBatchLearnsContextualBandit mirrors the Step convergence test
// through the batched-rollout path with concurrent reward evaluation.
func TestStepBatchLearnsContextualBandit(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	net, err := NewNetwork(2, 16, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := NewTrainer(net, nn.NewAdam(5e-3), 0.05)
	if err != nil {
		t.Fatal(err)
	}
	contexts := [][]float64{{1, 0}, {0, 1}}
	rewardFor := func(ctx []float64, a int) float64 {
		switch {
		case ctx[0] == 1 && a == 0:
			return 1
		case ctx[1] == 1 && a == 2:
			return 1
		case a == 1:
			return 0.3
		default:
			return 0
		}
	}
	const batch = 16
	for i := 0; i < 300; i++ {
		zs := make([][]float64, batch)
		for k := range zs {
			zs[k] = contexts[rng.Intn(2)]
		}
		if _, _, err := tr.StepBatch(zs, func(k, a int) (float64, error) {
			return rewardFor(zs[k], a), nil
		}, 4, rng); err != nil {
			t.Fatal(err)
		}
	}
	a0, err := net.Greedy(contexts[0])
	if err != nil {
		t.Fatal(err)
	}
	a1, err := net.Greedy(contexts[1])
	if err != nil {
		t.Fatal(err)
	}
	if a0 != 0 || a1 != 2 {
		t.Fatalf("batched policy learned (%d, %d), want (0, 2)", a0, a1)
	}
}

func TestStepBatchValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	net, _ := NewNetwork(2, 8, 3, rng)
	tr, _ := NewTrainer(net, nn.NewAdam(1e-3), 0.1)
	if _, _, err := tr.StepBatch(nil, nil, 1, rng); err == nil {
		t.Fatal("empty batch must be rejected")
	}
	if _, _, err := tr.StepBatch([][]float64{{1, 0}}, func(int, int) (float64, error) {
		return math.Inf(1), nil
	}, 2, rng); err == nil {
		t.Fatal("non-finite reward must be rejected")
	}
}

// TestStepBatchWorkerCountInvariant locks in the rollout RNG contract: the
// shared parent rng is consumed only sequentially (one child seed per item),
// every worker samples from its own child RNG, and updates apply in index
// order — so the trained network must be bit-identical at any worker count.
// Run under -race (as CI does) this also proves no worker touches the
// parent rng concurrently.
func TestStepBatchWorkerCountInvariant(t *testing.T) {
	train := func(workers int) (*Network, *Trainer, []int) {
		rng := rand.New(rand.NewSource(77))
		net, err := NewNetwork(3, 10, 3, rng)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := NewTrainer(net, nn.NewAdam(2e-3), 0.05)
		if err != nil {
			t.Fatal(err)
		}
		stream := rand.New(rand.NewSource(101))
		var actions []int
		for step := 0; step < 20; step++ {
			zs := make([][]float64, 16)
			for i := range zs {
				zs[i] = []float64{float64(i%3) - 1, float64(step % 2), 0.5}
			}
			acts, _, err := tr.StepBatch(zs, func(i, a int) (float64, error) {
				return float64((a+i)%3) * 0.4, nil
			}, workers, stream)
			if err != nil {
				t.Fatal(err)
			}
			actions = append(actions, acts...)
		}
		return net, tr, actions
	}
	netA, trA, actsA := train(1)
	netB, trB, actsB := train(8)
	if !reflect.DeepEqual(actsA, actsB) {
		t.Fatal("sampled actions depend on worker count")
	}
	pa, pb := netA.Params(), netB.Params()
	for i := range pa {
		for j, v := range pa[i].Value.Data {
			if v != pb[i].Value.Data[j] {
				t.Fatalf("param %s[%d] diverged across worker counts: %g vs %g", pa[i].Name, j, v, pb[i].Value.Data[j])
			}
		}
	}
	if trA.Baseline() != trB.Baseline() {
		t.Fatalf("baselines diverged: %g vs %g", trA.Baseline(), trB.Baseline())
	}
}
