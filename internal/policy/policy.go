// Package policy implements the paper's adaptive model-selection scheme: a
// contextual bandit characterised by a single-step MDP and solved with a
// REINFORCE policy network. The network maps a contextual state z_x to a
// categorical distribution π_θ(a|z_x) over the K HEC layers; training
// minimises the negative expected reward with a reinforcement-comparison
// baseline for variance reduction, and the reward trades detection
// accuracy against an end-to-end-delay cost C(a,x) = α·t/(1+α·t).
package policy

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/mat"
	"repro/internal/nn"
	"repro/internal/parallel"
)

// Cost maps an end-to-end detection delay (milliseconds) to an equivalent
// accuracy penalty in [0, 1) — the paper's equation (1). alpha tunes how
// aggressively delay is punished (5e-4 for the univariate dataset, 3.5e-4
// for the multivariate one).
func Cost(alpha, delayMs float64) float64 {
	if delayMs < 0 {
		delayMs = 0
	}
	at := alpha * delayMs
	return at / (1 + at)
}

// Reward is the paper's reward function R(a, z_x) = accuracy(x) − C(a, x),
// with accuracy ∈ {0, 1} for a single detection (correct or not).
func Reward(correct bool, alpha, delayMs float64) float64 {
	acc := 0.0
	if correct {
		acc = 1
	}
	return acc - Cost(alpha, delayMs)
}

// Network is the policy network: a single hidden layer (the paper uses 100
// units) with ReLU, and a K-way softmax output over HEC layers.
type Network struct {
	net *nn.Sequential
	// K is the action count (HEC layer count).
	K int
	// StateDim is the context width.
	StateDim int
}

// NewNetwork builds a policy network mapping stateDim-wide contexts to K
// actions through one hidden layer.
func NewNetwork(stateDim, hidden, k int, rng *rand.Rand) (*Network, error) {
	if stateDim <= 0 || hidden <= 0 || k < 2 {
		return nil, fmt.Errorf("policy: invalid network shape state=%d hidden=%d k=%d", stateDim, hidden, k)
	}
	return &Network{
		net: nn.NewSequential(
			nn.NewDense(stateDim, hidden, rng),
			nn.NewActivation(nn.ActReLU),
			nn.NewDense(hidden, k, rng),
		),
		K:        k,
		StateDim: stateDim,
	}, nil
}

// Probs returns π_θ(·|z): the softmax action distribution for context z.
func (p *Network) Probs(z []float64) ([]float64, error) {
	logits, err := p.net.Forward(z, false)
	if err != nil {
		return nil, fmt.Errorf("policy forward: %w", err)
	}
	return mat.Softmax(logits), nil
}

// Greedy returns argmax_a π_θ(a|z), the deployment-time action (the paper
// selects |a| = argmax_k s_k).
func (p *Network) Greedy(z []float64) (int, error) {
	probs, err := p.Probs(z)
	if err != nil {
		return 0, err
	}
	return mat.ArgMax(probs), nil
}

// Sample draws an action from π_θ(·|z) for exploration during training,
// returning the action and the distribution it was drawn from.
func (p *Network) Sample(z []float64, rng *rand.Rand) (int, []float64, error) {
	probs, err := p.Probs(z)
	if err != nil {
		return 0, nil, err
	}
	r := rng.Float64()
	var cum float64
	for a, pr := range probs {
		cum += pr
		if r < cum {
			return a, probs, nil
		}
	}
	return len(probs) - 1, probs, nil // numerical tail
}

// reinforce accumulates the policy gradient for one (z, a, advantage)
// triple: ∂(−log π(a|z)·A)/∂logits = (π − onehot_a)·A, backpropagated
// through the network.
func (p *Network) reinforce(z []float64, action int, advantage float64) error {
	if action < 0 || action >= p.K {
		return fmt.Errorf("policy: action %d out of range %d", action, p.K)
	}
	logits, err := p.net.Forward(z, true)
	if err != nil {
		return err
	}
	probs := mat.Softmax(logits)
	grad := make([]float64, p.K)
	for a := range grad {
		g := probs[a]
		if a == action {
			g -= 1
		}
		grad[a] = g * advantage
	}
	_, err = p.net.Backward(grad)
	return err
}

// NumParams returns the trainable-parameter count.
func (p *Network) NumParams() int { return p.net.NumParams() }

// Flops estimates one forward pass's MAC FLOPs (the policy must be cheap
// enough for the IoT device; this feeds the HEC compute model).
func (p *Network) Flops() int64 { return p.net.FlopsDense() }

// Params exposes the parameters for snapshotting.
func (p *Network) Params() []nn.Param { return p.net.Params() }

// Trainer runs REINFORCE with a reinforcement-comparison baseline: the
// advantage of a sampled action is R − r̄ where r̄ is an exponential moving
// average of observed rewards (Sutton & Barto's "reinforcement comparison",
// the paper's variance-reduction choice).
type Trainer struct {
	Net *Network
	// Opt updates the network; Adam with lr ≈ 1e-3 works well.
	Opt nn.Optimizer
	// Beta is the baseline's moving-average rate.
	Beta float64

	baseline    float64
	initialised bool
}

// NewTrainer returns a REINFORCE trainer with baseline rate beta.
func NewTrainer(net *Network, opt nn.Optimizer, beta float64) (*Trainer, error) {
	if net == nil || opt == nil {
		return nil, fmt.Errorf("policy: trainer needs a network and an optimiser")
	}
	if beta <= 0 || beta > 1 {
		return nil, fmt.Errorf("policy: baseline rate %g out of (0,1]", beta)
	}
	return &Trainer{Net: net, Opt: opt, Beta: beta}, nil
}

// Baseline returns the current reinforcement-comparison baseline r̄.
func (t *Trainer) Baseline() float64 { return t.baseline }

// Step samples an action for context z, queries rewardFn for its reward,
// applies one REINFORCE update with the baselined advantage, and returns
// the action and reward. rewardFn is called exactly once, with the sampled
// action — in the HEC system it runs the detector at that layer and scores
// the outcome.
func (t *Trainer) Step(z []float64, rewardFn func(action int) (float64, error), rng *rand.Rand) (int, float64, error) {
	action, _, err := t.Net.Sample(z, rng)
	if err != nil {
		return 0, 0, err
	}
	reward, err := rewardFn(action)
	if err != nil {
		return 0, 0, fmt.Errorf("policy: reward for action %d: %w", action, err)
	}
	if math.IsNaN(reward) || math.IsInf(reward, 0) {
		return 0, 0, fmt.Errorf("policy: non-finite reward %g", reward)
	}
	if !t.initialised {
		t.baseline = reward
		t.initialised = true
	}
	advantage := reward - t.baseline
	if err := t.Net.reinforce(z, action, advantage); err != nil {
		return 0, 0, err
	}
	if err := t.Opt.Step(t.Net.Params()); err != nil {
		return 0, 0, err
	}
	t.baseline += t.Beta * (reward - t.baseline)
	return action, reward, nil
}

// StepBatch runs one batched REINFORCE rollout over a batch of contexts:
// every action is sampled under the current (frozen) policy and its reward
// evaluated concurrently across workers (the expensive part when the reward
// runs a detector), then the parameter updates are applied sequentially in
// index order.
//
// Determinism and RNG-sharing contract: the parent rng is never handed to a
// worker goroutine. It is consumed exactly n times, sequentially in index
// order, to derive one child seed per rollout item; each worker then samples
// its item's action from its own child RNG. Because every random draw is
// attributable to exactly one item regardless of which goroutine runs it —
// and the reward function receives (index, action) so it can replay
// precomputed outcomes — a fixed parent rng yields a fixed training
// trajectory for any worker count. This is pinned (under -race) by
// TestStepBatchWorkerCountInvariant and hec's
// TestTrainPolicyRolloutDeterministic.
//
// A single-item batch delegates to Step on the parent rng, so StepBatch
// degenerates to Step exactly. The gradient for item i uses the policy as
// updated by items 0..i−1 while its action was sampled under the batch-start
// policy; for the small batches used here that off-policy drift is
// negligible, and it vanishes at batch size 1.
func (t *Trainer) StepBatch(zs [][]float64, rewardFn func(i, action int) (float64, error), workers int, rng *rand.Rand) ([]int, []float64, error) {
	n := len(zs)
	if n == 0 {
		return nil, nil, fmt.Errorf("policy: empty rollout batch")
	}
	if n == 1 {
		action, reward, err := t.Step(zs[0], func(a int) (float64, error) { return rewardFn(0, a) }, rng)
		if err != nil {
			return nil, nil, err
		}
		return []int{action}, []float64{reward}, nil
	}
	// One child seed per item, drawn sequentially from the parent stream.
	seeds := make([]int64, n)
	for i := range seeds {
		seeds[i] = rng.Int63()
	}
	type rollout struct {
		action int
		reward float64
	}
	// Sampling and reward evaluation fan out together: policy inference is
	// read-only on the network, each item draws only from its child RNG.
	outs, err := parallel.Map(workers, n, func(i int) (rollout, error) {
		child := rand.New(rand.NewSource(seeds[i]))
		action, _, err := t.Net.Sample(zs[i], child)
		if err != nil {
			return rollout{}, err
		}
		rw, err := rewardFn(i, action)
		if err != nil {
			return rollout{}, fmt.Errorf("policy: reward for rollout %d action %d: %w", i, action, err)
		}
		if math.IsNaN(rw) || math.IsInf(rw, 0) {
			return rollout{}, fmt.Errorf("policy: non-finite reward %g for rollout %d", rw, i)
		}
		return rollout{action: action, reward: rw}, nil
	})
	if err != nil {
		return nil, nil, err
	}
	actions := make([]int, n)
	rewards := make([]float64, n)
	for i, o := range outs {
		actions[i], rewards[i] = o.action, o.reward
	}
	for i := 0; i < n; i++ {
		if !t.initialised {
			t.baseline = rewards[i]
			t.initialised = true
		}
		advantage := rewards[i] - t.baseline
		if err := t.Net.reinforce(zs[i], actions[i], advantage); err != nil {
			return nil, nil, err
		}
		if err := t.Opt.Step(t.Net.Params()); err != nil {
			return nil, nil, err
		}
		t.baseline += t.Beta * (rewards[i] - t.baseline)
	}
	return actions, rewards, nil
}
