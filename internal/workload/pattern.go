// Package workload models what a real IoT fleet throws at the serving
// plane, replacing the uniform synthetic stream the load generator fired
// until now. It has three parts:
//
//   - temporal arrival patterns (Pattern): servegen-style multi-period
//     intensity curves — diurnal sinusoids, bursts, ramps, spikes and sums
//     of them — that the cluster runtime turns into per-device pacing;
//   - device cohorts (Cohort): heterogeneous sub-fleets with their own
//     scheme, size, rounds, batch size, reward weight and pattern, so all
//     six HEC schemes can be live in one run;
//   - trace replay (Trace): recorded fleets parsed from CSV/JSON and
//     re-run deterministically from a seed.
//
// The package is pure: no clocks, no goroutines, no transport — every
// Pattern is a deterministic function of elapsed time, so the same
// configuration always describes the same workload. The cluster runtime
// (internal/cluster.RunFleet) owns the actual goroutines, sockets and
// fault injection.
package workload

import (
	"fmt"
	"math"
	"strings"
	"time"
)

// Pattern is a time-varying arrival intensity: Intensity(t) returns the
// relative arrival-rate multiplier at elapsed run time t. 1 means the
// cohort's base rate, 2 twice it, 0 (or less) an idle lull — the runtime
// clamps non-positive intensities to a small floor so a closed-loop run
// always makes progress. Implementations must be pure functions of t
// (no mutable state): the runtime calls Intensity concurrently from every
// device goroutine.
type Pattern interface {
	// Name identifies the pattern in stats and flags.
	Name() string
	// Intensity returns the relative rate multiplier at elapsed time t.
	Intensity(t time.Duration) float64
}

// MinIntensity is the floor the runtime clamps non-positive intensities
// to when converting intensity into inter-arrival gaps, bounding how long
// a lull can stall a closed-loop device (gap ≤ BaseInterval/MinIntensity).
const MinIntensity = 0.01

// Gap converts an intensity sample into the inter-arrival gap a device
// waits before its next dispatch: base divided by the clamped intensity.
// A base of 0 disables pacing (the gap is always 0) but the pattern is
// still sampled, so generator overhead is the same paced or not — which
// is what the workload-overhead benchmark measures.
func Gap(p Pattern, t time.Duration, base time.Duration) time.Duration {
	if p == nil {
		return 0
	}
	iv := p.Intensity(t)
	if base <= 0 {
		return 0
	}
	if iv < MinIntensity {
		iv = MinIntensity
	}
	return time.Duration(float64(base) / iv)
}

// Uniform is a flat pattern: the same intensity at every instant. level
// ≤ 0 is treated as 1 by the runtime's clamping, but Validate rejects it
// up front where possible.
func Uniform(level float64) Pattern { return uniform{level} }

type uniform struct{ level float64 }

func (u uniform) Name() string                    { return fmt.Sprintf("uniform(%g)", u.level) }
func (u uniform) Intensity(time.Duration) float64 { return u.level }

// Diurnal is the fleet-scale day/night cycle: a raised cosine that starts
// at base, peaks at peak half a period in, and returns to base — one
// "day" per period. IoT fleets are overwhelmingly diurnal; this is the
// first-order model of their load curve.
func Diurnal(period time.Duration, base, peak float64) Pattern {
	return diurnal{period, base, peak}
}

type diurnal struct {
	period     time.Duration
	base, peak float64
}

func (d diurnal) Name() string {
	return fmt.Sprintf("diurnal(%v,%g→%g)", d.period, d.base, d.peak)
}

func (d diurnal) Intensity(t time.Duration) float64 {
	if d.period <= 0 {
		return d.base
	}
	phase := 2 * math.Pi * float64(t%d.period) / float64(d.period)
	return d.base + (d.peak-d.base)*(1-math.Cos(phase))/2
}

// Burst is a square wave: intensity peak for the first duty fraction of
// every period, base for the rest — the bursty sensor fleet that reports
// in synchronized waves.
func Burst(period time.Duration, duty, base, peak float64) Pattern {
	if duty < 0 {
		duty = 0
	}
	if duty > 1 {
		duty = 1
	}
	return burst{period, duty, base, peak}
}

type burst struct {
	period     time.Duration
	duty       float64
	base, peak float64
}

func (b burst) Name() string {
	return fmt.Sprintf("burst(%v,%.0f%%,%g→%g)", b.period, b.duty*100, b.base, b.peak)
}

func (b burst) Intensity(t time.Duration) float64 {
	if b.period <= 0 {
		return b.base
	}
	if float64(t%b.period) < b.duty*float64(b.period) {
		return b.peak
	}
	return b.base
}

// Ramp rises (or falls) linearly from from to to over d, then holds to —
// the onboarding curve of a fleet being rolled out, or a drain.
func Ramp(d time.Duration, from, to float64) Pattern { return ramp{d, from, to} }

type ramp struct {
	d        time.Duration
	from, to float64
}

func (r ramp) Name() string { return fmt.Sprintf("ramp(%v,%g→%g)", r.d, r.from, r.to) }

func (r ramp) Intensity(t time.Duration) float64 {
	if r.d <= 0 || t >= r.d {
		return r.to
	}
	frac := float64(t) / float64(r.d)
	return r.from + (r.to-r.from)*frac
}

// Spike holds base everywhere except [at, at+width), where intensity is
// base*mult — the flash crowd a failover scenario is killed under.
func Spike(at, width time.Duration, base, mult float64) Pattern {
	return spike{at, width, base, mult}
}

type spike struct {
	at, width time.Duration
	base      float64
	mult      float64
}

func (s spike) Name() string {
	return fmt.Sprintf("spike(@%v+%v,%g×%g)", s.at, s.width, s.base, s.mult)
}

func (s spike) Intensity(t time.Duration) float64 {
	if t >= s.at && t < s.at+s.width {
		return s.base * s.mult
	}
	return s.base
}

// Sum composes multi-period patterns additively: the fleet whose load is a
// slow diurnal swell with fast bursts riding on top is
// Sum(Diurnal(...), Burst(...)).
func Sum(ps ...Pattern) Pattern { return sum(ps) }

type sum []Pattern

func (s sum) Name() string {
	names := make([]string, len(s))
	for i, p := range s {
		names[i] = p.Name()
	}
	return "sum(" + strings.Join(names, "+") + ")"
}

func (s sum) Intensity(t time.Duration) float64 {
	var total float64
	for _, p := range s {
		total += p.Intensity(t)
	}
	return total
}
