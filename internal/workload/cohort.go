package workload

import "fmt"

// Cohort is one heterogeneous sub-fleet of simulated devices: every
// member routes with the same scheme, dispatches with the same batch
// size, and paces itself by the same arrival pattern. A fleet run is a
// list of cohorts running concurrently — which is how all six HEC schemes
// end up live in one run, each with its own size and reward weight.
//
// Scheme is the cluster runtime's CLI token
// (iot|edge|cloud|successive|adaptive|pathological); the runtime parses
// and rejects unknown tokens at run start, keeping this package free of a
// dependency on the runtime's types.
type Cohort struct {
	// Name labels the cohort in stats; empty defaults to the scheme token.
	Name string
	// Scheme is the routing-scheme token every device in the cohort uses.
	Scheme string
	// Devices is the number of concurrent devices (< 1 means 1).
	Devices int
	// Rounds is how many passes over the sample set each device makes
	// (< 1 means 1).
	Rounds int
	// BatchSize > 1 makes each device ship that many windows per request;
	// smaller values keep per-window dispatch.
	BatchSize int
	// Alpha is the delay-cost weight of the cohort's per-window reward.
	Alpha float64
	// Pattern modulates the cohort's arrival pacing; nil streams as fast
	// as the serving plane allows (the closed-loop default).
	Pattern Pattern
}

// Label returns the cohort's display name: Name, or the scheme token.
func (c Cohort) Label() string {
	if c.Name != "" {
		return c.Name
	}
	return c.Scheme
}

// Validate rejects cohorts the runtime could not run: a missing scheme
// token or a negative reward weight. Sizing fields are clamped by the
// runtime instead (matching the load generator's historical contract).
func (c Cohort) Validate() error {
	if c.Scheme == "" {
		return fmt.Errorf("workload: cohort %q has no scheme", c.Label())
	}
	if c.Alpha < 0 {
		return fmt.Errorf("workload: cohort %q has negative alpha %g", c.Label(), c.Alpha)
	}
	return nil
}

// ValidateCohorts validates a whole fleet: at least one cohort, every
// cohort valid, and no duplicate labels (stats would be ambiguous).
func ValidateCohorts(cohorts []Cohort) error {
	if len(cohorts) == 0 {
		return fmt.Errorf("workload: a fleet needs at least one cohort")
	}
	seen := make(map[string]bool, len(cohorts))
	for _, c := range cohorts {
		if err := c.Validate(); err != nil {
			return err
		}
		if seen[c.Label()] {
			return fmt.Errorf("workload: duplicate cohort label %q", c.Label())
		}
		seen[c.Label()] = true
	}
	return nil
}
