package workload

import (
	"math"
	"strings"
	"testing"
	"time"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestPatternShapes(t *testing.T) {
	d := Diurnal(time.Minute, 1, 5)
	if got := d.Intensity(0); !almost(got, 1) {
		t.Fatalf("diurnal at t=0: %g, want base 1", got)
	}
	if got := d.Intensity(30 * time.Second); !almost(got, 5) {
		t.Fatalf("diurnal at half period: %g, want peak 5", got)
	}
	if got := d.Intensity(time.Minute); !almost(got, 1) {
		t.Fatalf("diurnal after full period: %g, want base 1", got)
	}

	b := Burst(10*time.Second, 0.2, 1, 8)
	if got := b.Intensity(time.Second); !almost(got, 8) {
		t.Fatalf("burst inside duty: %g, want peak 8", got)
	}
	if got := b.Intensity(5 * time.Second); !almost(got, 1) {
		t.Fatalf("burst outside duty: %g, want base 1", got)
	}

	r := Ramp(10*time.Second, 0, 4)
	if got := r.Intensity(5 * time.Second); !almost(got, 2) {
		t.Fatalf("ramp midpoint: %g, want 2", got)
	}
	if got := r.Intensity(time.Hour); !almost(got, 4) {
		t.Fatalf("ramp holds target: %g, want 4", got)
	}

	s := Spike(5*time.Second, time.Second, 1, 10)
	if got := s.Intensity(5500 * time.Millisecond); !almost(got, 10) {
		t.Fatalf("inside spike: %g, want 10", got)
	}
	if got := s.Intensity(7 * time.Second); !almost(got, 1) {
		t.Fatalf("outside spike: %g, want base 1", got)
	}

	sum := Sum(Uniform(1), Uniform(2))
	if got := sum.Intensity(0); !almost(got, 3) {
		t.Fatalf("sum: %g, want 3", got)
	}
	for _, p := range []Pattern{d, b, r, s, sum, Uniform(1)} {
		if p.Name() == "" {
			t.Fatalf("%T has empty name", p)
		}
	}
}

func TestGap(t *testing.T) {
	if got := Gap(nil, 0, time.Second); got != 0 {
		t.Fatalf("nil pattern gap = %v, want 0", got)
	}
	if got := Gap(Uniform(2), 0, 0); got != 0 {
		t.Fatalf("zero base gap = %v, want 0", got)
	}
	if got := Gap(Uniform(2), 0, time.Second); got != 500*time.Millisecond {
		t.Fatalf("gap at intensity 2 = %v, want 500ms", got)
	}
	// Non-positive intensity clamps to MinIntensity: a lull slows the
	// device down but cannot stall it forever.
	if got, max := Gap(Uniform(0), 0, time.Second), time.Duration(float64(time.Second)/MinIntensity); got != max {
		t.Fatalf("clamped gap = %v, want %v", got, max)
	}
}

func TestCohortValidation(t *testing.T) {
	if err := (Cohort{Scheme: "edge"}).Validate(); err != nil {
		t.Fatalf("valid cohort rejected: %v", err)
	}
	if err := (Cohort{}).Validate(); err == nil {
		t.Fatal("cohort without scheme must be rejected")
	}
	if err := (Cohort{Scheme: "edge", Alpha: -1}).Validate(); err == nil {
		t.Fatal("negative alpha must be rejected")
	}
	if err := ValidateCohorts(nil); err == nil {
		t.Fatal("empty fleet must be rejected")
	}
	dup := []Cohort{{Scheme: "edge"}, {Scheme: "edge"}}
	if err := ValidateCohorts(dup); err == nil {
		t.Fatal("duplicate labels must be rejected")
	}
	named := []Cohort{{Scheme: "edge"}, {Name: "edge-2", Scheme: "edge"}}
	if err := ValidateCohorts(named); err != nil {
		t.Fatalf("distinct labels rejected: %v", err)
	}
	if got := (Cohort{Name: "x", Scheme: "edge"}).Label(); got != "x" {
		t.Fatalf("label = %q, want name", got)
	}
	if got := (Cohort{Scheme: "edge"}).Label(); got != "edge" {
		t.Fatalf("label = %q, want scheme fallback", got)
	}
}

func TestParseTraceCSV(t *testing.T) {
	const good = `# recorded fleet
t_ms,device,scheme
0,dev-a,edge

1.5, dev-b, cloud
3,dev-a,adaptive
`
	tr, err := ParseTraceCSV(strings.NewReader(good))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) != 3 {
		t.Fatalf("parsed %d events, want 3", len(tr.Events))
	}
	if tr.Events[1].Device != "dev-b" || tr.Events[1].Scheme != "cloud" || !almost(tr.Events[1].AtMs, 1.5) {
		t.Fatalf("event 1 = %+v", tr.Events[1])
	}
	names, byDev := tr.Devices()
	if len(names) != 2 || names[0] != "dev-a" || names[1] != "dev-b" {
		t.Fatalf("devices = %v", names)
	}
	if len(byDev["dev-a"]) != 2 {
		t.Fatalf("dev-a events = %d, want 2", len(byDev["dev-a"]))
	}
	if got := tr.Schemes(); len(got) != 3 || got[0] != "adaptive" {
		t.Fatalf("schemes = %v", got)
	}
	if got := tr.Duration(); got != 3*time.Millisecond {
		t.Fatalf("duration = %v, want 3ms", got)
	}

	bad := map[string]string{
		"ragged row":    "0,dev-a,edge\n1,dev-b\n",
		"extra field":   "0,dev-a,edge,junk\n",
		"bad timestamp": "zero,dev-a,edge\n",
		"negative time": "-1,dev-a,edge\n",
		"out of order":  "5,dev-a,edge\n2,dev-b,cloud\n",
		"empty device":  "0,,edge\n",
		"empty scheme":  "0,dev-a,\n",
		"empty trace":   "",
		"header only":   "t_ms,device,scheme\n",
		"comment only":  "# nothing here\n",
	}
	for name, in := range bad {
		if _, err := ParseTraceCSV(strings.NewReader(in)); err == nil {
			t.Errorf("%s: parse succeeded, want error", name)
		}
	}
	// Ragged-row errors name the offending line.
	_, err = ParseTraceCSV(strings.NewReader("0,dev-a,edge\n1,dev-b\n"))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("ragged error = %v, want line 2 reference", err)
	}
}

func TestParseTraceJSON(t *testing.T) {
	bare := `[{"t_ms":0,"device":"a","scheme":"edge"},{"t_ms":2,"device":"b","scheme":"cloud"}]`
	tr, err := ParseTraceJSON(strings.NewReader(bare))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) != 2 {
		t.Fatalf("bare array: %d events, want 2", len(tr.Events))
	}
	obj := `{"events":[{"t_ms":1,"device":"a","scheme":"iot"}]}`
	tr, err = ParseTraceJSON(strings.NewReader(obj))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) != 1 || tr.Events[0].Scheme != "iot" {
		t.Fatalf("object form: %+v", tr.Events)
	}
	for name, in := range map[string]string{
		"not json":     "nope",
		"empty events": `{"events":[]}`,
		"out of order": `[{"t_ms":5,"device":"a","scheme":"edge"},{"t_ms":1,"device":"b","scheme":"edge"}]`,
		"nan literal":  `[{"t_ms":NaN,"device":"a","scheme":"edge"}]`,
	} {
		if _, err := ParseTraceJSON(strings.NewReader(in)); err == nil {
			t.Errorf("%s: parse succeeded, want error", name)
		}
	}
}

// TestTraceValidateProperties nails the parser invariants the fleet engine
// leans on: any trace that parses has per-device sequences whose
// concatenation is exactly the event list, and a non-decreasing timeline.
func TestTraceValidateProperties(t *testing.T) {
	tr := &Trace{Events: []TraceEvent{
		{AtMs: 0, Device: "b", Scheme: "edge"},
		{AtMs: 0, Device: "a", Scheme: "cloud"},
		{AtMs: 1, Device: "b", Scheme: "edge"},
	}}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	names, byDev := tr.Devices()
	total := 0
	for _, n := range names {
		evs := byDev[n]
		total += len(evs)
		for i := 1; i < len(evs); i++ {
			if evs[i].AtMs < evs[i-1].AtMs {
				t.Fatalf("device %q sequence out of order", n)
			}
		}
	}
	if total != len(tr.Events) {
		t.Fatalf("device partition lost events: %d vs %d", total, len(tr.Events))
	}
}
