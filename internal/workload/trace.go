package workload

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"
)

// TraceEvent is one recorded window arrival: at AtMs milliseconds into
// the recording, device Device dispatched one window under Scheme.
type TraceEvent struct {
	AtMs   float64 `json:"t_ms"`
	Device string  `json:"device"`
	Scheme string  `json:"scheme"`
}

// Trace is a recorded fleet: a global, time-ordered sequence of window
// arrivals. Replaying it (cluster.RunFleet with FleetConfig.Trace) re-runs
// the recorded arrival process deterministically — window contents are
// drawn from the run's seed, so the same seed and trace reproduce the
// same detections.
type Trace struct {
	Events []TraceEvent
}

// Validate enforces the trace invariants both parsers rely on: at least
// one event, no empty device or scheme, finite non-negative timestamps,
// and a non-decreasing global timeline (a recording cannot run backwards;
// merge-sort offline traces before replaying them).
func (tr *Trace) Validate() error {
	if tr == nil || len(tr.Events) == 0 {
		return fmt.Errorf("workload: empty trace")
	}
	prev := math.Inf(-1)
	for i, e := range tr.Events {
		if e.Device == "" {
			return fmt.Errorf("workload: trace event %d has no device", i)
		}
		if e.Scheme == "" {
			return fmt.Errorf("workload: trace event %d (device %q) has no scheme", i, e.Device)
		}
		if math.IsNaN(e.AtMs) || math.IsInf(e.AtMs, 0) || e.AtMs < 0 {
			return fmt.Errorf("workload: trace event %d has invalid timestamp %v", i, e.AtMs)
		}
		if e.AtMs < prev {
			return fmt.Errorf("workload: trace event %d out of order (%.3f ms after %.3f ms)", i, e.AtMs, prev)
		}
		prev = e.AtMs
	}
	return nil
}

// Devices returns the per-device event sequences, each preserving the
// recorded order, with device names sorted for a stable iteration order.
func (tr *Trace) Devices() (names []string, byDevice map[string][]TraceEvent) {
	byDevice = make(map[string][]TraceEvent)
	for _, e := range tr.Events {
		byDevice[e.Device] = append(byDevice[e.Device], e)
	}
	names = make([]string, 0, len(byDevice))
	for name := range byDevice {
		names = append(names, name)
	}
	sort.Strings(names)
	return names, byDevice
}

// Schemes returns the distinct scheme tokens in the trace, sorted.
func (tr *Trace) Schemes() []string {
	seen := make(map[string]bool)
	for _, e := range tr.Events {
		seen[e.Scheme] = true
	}
	out := make([]string, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Duration returns the recorded timeline's length (the last event's
// timestamp).
func (tr *Trace) Duration() time.Duration {
	if len(tr.Events) == 0 {
		return 0
	}
	last := tr.Events[len(tr.Events)-1].AtMs
	return time.Duration(last * float64(time.Millisecond))
}

// ParseTraceCSV reads a recorded fleet from CSV. Each record is
// "t_ms,device,scheme"; blank lines and #-comments are skipped, and an
// optional header row naming those columns is tolerated. Ragged rows
// (anything but 3 fields), unparsable or negative timestamps, and
// out-of-order records are rejected with the offending line, never
// papered over — a trace that parses replays exactly as recorded.
func ParseTraceCSV(r io.Reader) (*Trace, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // raggedness is our error to report, not csv's
	cr.Comment = '#'
	cr.TrimLeadingSpace = true
	tr := &Trace{}
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("workload: trace csv: %w", err)
		}
		line, _ := cr.FieldPos(0)
		if len(rec) == 1 && strings.TrimSpace(rec[0]) == "" {
			continue
		}
		if len(rec) != 3 {
			return nil, fmt.Errorf("workload: trace csv line %d: %d fields, want 3 (t_ms,device,scheme)", line, len(rec))
		}
		if len(tr.Events) == 0 && strings.EqualFold(strings.TrimSpace(rec[0]), "t_ms") {
			continue // header row
		}
		at, err := strconv.ParseFloat(strings.TrimSpace(rec[0]), 64)
		if err != nil {
			return nil, fmt.Errorf("workload: trace csv line %d: bad timestamp %q", line, rec[0])
		}
		tr.Events = append(tr.Events, TraceEvent{
			AtMs:   at,
			Device: strings.TrimSpace(rec[1]),
			Scheme: strings.TrimSpace(rec[2]),
		})
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return tr, nil
}

// ParseTraceJSON reads a recorded fleet from JSON: either a bare array of
// events ([{"t_ms":0,"device":"d0","scheme":"edge"}, ...]) or an object
// with an "events" array. The same invariants as ParseTraceCSV apply.
func ParseTraceJSON(r io.Reader) (*Trace, error) {
	data, err := io.ReadAll(io.LimitReader(r, 64<<20))
	if err != nil {
		return nil, fmt.Errorf("workload: trace json: %w", err)
	}
	tr := &Trace{}
	if err := json.Unmarshal(data, &tr.Events); err != nil {
		var obj struct {
			Events []TraceEvent `json:"events"`
		}
		if err2 := json.Unmarshal(data, &obj); err2 != nil {
			return nil, fmt.Errorf("workload: trace json: %w", err)
		}
		tr.Events = obj.Events
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return tr, nil
}
