package workload

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParseTraceCSV drives arbitrary bytes through the CSV trace parser.
// The property under test: the parser never panics, and anything it
// accepts satisfies the trace invariants (Validate passes, every event
// has a device and scheme, the timeline is non-decreasing) and survives a
// round trip through its own device partition.
func FuzzParseTraceCSV(f *testing.F) {
	f.Add([]byte("t_ms,device,scheme\n0,dev-a,edge\n1,dev-b,cloud\n"))
	f.Add([]byte("# comment\n0,a,iot\n0,a,iot\n2.5,b,adaptive\n"))
	f.Add([]byte("0,dev,successive"))
	f.Add([]byte("1,dev\n"))         // ragged
	f.Add([]byte("x,dev,edge\n"))    // bad timestamp
	f.Add([]byte("5,a,edge\n1,b,c")) // out of order
	f.Add([]byte(""))
	f.Add([]byte("\xff\xfe,a,b\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ParseTraceCSV(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("accepted trace fails Validate: %v", err)
		}
		prev := -1.0
		for i, e := range tr.Events {
			if e.Device == "" || e.Scheme == "" {
				t.Fatalf("event %d accepted with empty field: %+v", i, e)
			}
			if strings.ContainsAny(e.Device, "\n") {
				t.Fatalf("event %d device embeds newline: %q", i, e.Device)
			}
			if e.AtMs < prev {
				t.Fatalf("event %d out of order after parse", i)
			}
			prev = e.AtMs
		}
		names, byDev := tr.Devices()
		total := 0
		for _, n := range names {
			total += len(byDev[n])
		}
		if total != len(tr.Events) {
			t.Fatalf("device partition lost events: %d vs %d", total, len(tr.Events))
		}
	})
}
