// Package autoscale is the elastic-fleet control plane over the routing
// layer's dynamic membership: a Collect → Analyze → Decide → Actuate loop
// that grows a tier when load signals say its replicas are saturated and
// drains it back when they idle, mirroring the four-stage model-autoscaler
// pipeline from the inference-sim related work (up/down cooldowns, a
// no-op-determinism invariant under steady load).
//
// The stages are pluggable: a Collector scrapes load signals (the built-in
// one reads a routing.ReplicaSet's per-replica in-flight counts, rolling
// service-time percentiles and admission sheds), a Policy turns one sample
// into a desired replica count (TargetUtilization: hysteresis around a
// per-replica in-flight target, cooldown-gated, min/max-clamped), and an
// Actuator moves the tier there (the built-in one provisions replicas
// through a Spawner — in-process transport.Servers or hecnode child
// processes — and drains them through ReplicaSet.Remove, newest first,
// never below the seed membership it was handed).
//
// The invariant tests pin: a controller over a steady fleet makes zero
// scale decisions and leaves the run's stats bit-identical to a
// controller-less run, and an elastic run drops zero windows — scaling is
// additive capacity, never correctness.
package autoscale

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/routing"
)

// Metrics is one collected load sample — the Collect stage's output and
// the Decide stage's input.
type Metrics struct {
	// Replicas is the tier's current membership size; Healthy how many of
	// them are answering.
	Replicas, Healthy int
	// InFlight is the requests riding the tier right now, summed across
	// replicas.
	InFlight int
	// Shed is the cumulative admission-shed count.
	Shed uint64
	// Queued is the tier's server-side scheduler backlog, summed across
	// replicas as of each replica's last health probe — the direct queue
	// signal from scheduling servers, complementing InFlight (which only
	// sees requests this client has in the air). Zero when no replica
	// runs a scheduler.
	Queued int
	// Busy is the cumulative count of requests replicas refused with the
	// scheduler's busy backpressure code; rising Busy under a healthy
	// fleet means the tier is capacity-bound, not failing.
	Busy uint64
	// P99Ms is the worst per-replica rolling p99 service time (ms).
	P99Ms float64
}

// Collector produces one load sample per control-loop tick. Collect must
// be safe to call concurrently with serving traffic and must not perturb
// routing — the no-op-determinism invariant depends on observation being
// free.
type Collector interface {
	Collect() Metrics
}

// CollectSet returns a Collector scraping a ReplicaSet's Status.
func CollectSet(set *routing.ReplicaSet) Collector { return setCollector{set} }

type setCollector struct{ set *routing.ReplicaSet }

func (c setCollector) Collect() Metrics {
	m := Metrics{Shed: c.set.Shed()}
	for _, st := range c.set.Status() {
		m.Replicas++
		if st.Healthy {
			m.Healthy++
		}
		m.InFlight += st.InFlight
		m.Queued += st.QueueDepth
		m.Busy += st.Busy
		if st.ServiceP99Ms > m.P99Ms {
			m.P99Ms = st.ServiceP99Ms
		}
	}
	return m
}

// Actuator is the Actuate stage: move the tier to a target replica count.
// Implementations must report the count actually reached — a partial
// scale-up (spawner failure mid-way) returns what it got to, with the
// error.
type Actuator interface {
	ScaleTo(ctx context.Context, target int) (reached int, err error)
}

// SetActuator actuates against a routing.ReplicaSet: scale-up spawns a
// replica through the Spawner and Adds it to the rotation; scale-down
// Removes the most recently spawned replica (drain-aware: in-flight work
// finishes before its process is stopped). It only ever drains replicas
// it spawned itself — the seed membership the set started with is its
// floor, so a misconfigured policy cannot drain a tier it doesn't own.
type SetActuator struct {
	set     *routing.ReplicaSet
	spawner Spawner

	mu      sync.Mutex
	spawned []spawnedReplica // LIFO: newest is drained first
}

type spawnedReplica struct {
	addr string
	stop func() error
}

// NewSetActuator wires an actuator to the set it scales and the spawner
// that provisions replicas for it.
func NewSetActuator(set *routing.ReplicaSet, spawner Spawner) *SetActuator {
	return &SetActuator{set: set, spawner: spawner}
}

// ScaleTo implements Actuator.
func (a *SetActuator) ScaleTo(ctx context.Context, target int) (int, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	cur := a.set.Size()
	for cur < target {
		addr, stop, err := a.spawner.Spawn(ctx)
		if err != nil {
			return cur, fmt.Errorf("autoscale: spawning replica %d/%d: %w", cur+1, target, err)
		}
		if err := a.set.Add(addr); err != nil {
			if stop != nil {
				stop()
			}
			return cur, fmt.Errorf("autoscale: admitting spawned replica %s: %w", addr, err)
		}
		a.spawned = append(a.spawned, spawnedReplica{addr: addr, stop: stop})
		cur++
	}
	for cur > target {
		if len(a.spawned) == 0 {
			return cur, fmt.Errorf("autoscale: %d replicas above target %d are not ours to drain (seed membership is the floor)", cur, target)
		}
		top := a.spawned[len(a.spawned)-1]
		if err := a.set.Remove(top.addr); err != nil {
			return cur, fmt.Errorf("autoscale: draining replica %s: %w", top.addr, err)
		}
		a.spawned = a.spawned[:len(a.spawned)-1]
		if top.stop != nil {
			if err := top.stop(); err != nil {
				return cur - 1, fmt.Errorf("autoscale: stopping drained replica %s: %w", top.addr, err)
			}
		}
		cur--
	}
	return cur, nil
}

// Close drains every replica the actuator spawned, returning the tier to
// its seed membership. Used by Controller.Close for leak-free teardown.
func (a *SetActuator) Close() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	var errs []error
	for len(a.spawned) > 0 {
		top := a.spawned[len(a.spawned)-1]
		a.spawned = a.spawned[:len(a.spawned)-1]
		if err := a.set.Remove(top.addr); err != nil {
			errs = append(errs, err)
		}
		if top.stop != nil {
			if err := top.stop(); err != nil {
				errs = append(errs, err)
			}
		}
	}
	return errors.Join(errs...)
}

// Config parameterises a Controller.
type Config struct {
	// Collector, Policy and Actuator are the loop's three pluggable
	// stages; all are required.
	Collector Collector
	Policy    Policy
	Actuator  Actuator
	// Interval is the control-loop cadence (default 250 ms).
	Interval time.Duration
	// Name labels the controller in status lines and fleet reports.
	Name string
}

// Status is a controller's observable state.
type Status struct {
	// Name is Config.Name.
	Name string
	// Replicas is the membership size at the last Collect; HighWater the
	// largest ever observed.
	Replicas, HighWater int
	// ScaleUps and ScaleDowns count actuated scale operations — loop
	// rounds whose decision changed the replica count. A steady-load run
	// must show zero of each (the no-op-determinism invariant).
	ScaleUps, ScaleDowns uint64
}

// String renders the one-line summary fleet reports embed.
func (st Status) String() string {
	return fmt.Sprintf("autoscale %-8s replicas=%d high=%d ups=%d downs=%d",
		st.Name, st.Replicas, st.HighWater, st.ScaleUps, st.ScaleDowns)
}

// Controller runs the Collect → Analyze → Decide → Actuate loop on its
// own goroutine. Start and Stop pair freely (cluster.RunFleet scopes a
// controller to one run that way); Close stops the loop and drains every
// replica the actuator spawned. Step is the loop body, exported so tests
// — and anything needing a synchronous decision — can drive rounds
// deterministically without a ticker.
type Controller struct {
	cfg Config

	mu      sync.Mutex // serialises Step and guards loop state
	stopCh  chan struct{}
	wg      sync.WaitGroup
	running bool

	replicas   atomic.Int64
	highWater  atomic.Int64
	scaleUps   atomic.Uint64
	scaleDowns atomic.Uint64
	closed     atomic.Bool
}

// New validates cfg and returns a controller, not yet running.
func New(cfg Config) (*Controller, error) {
	if cfg.Collector == nil || cfg.Policy == nil || cfg.Actuator == nil {
		return nil, errors.New("autoscale: a controller needs a collector, a policy and an actuator")
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 250 * time.Millisecond
	}
	return &Controller{cfg: cfg}, nil
}

// Start launches the control loop; it is a no-op while already running or
// after Close.
func (c *Controller) Start() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.running || c.closed.Load() {
		return
	}
	c.running = true
	c.stopCh = make(chan struct{})
	c.wg.Add(1)
	go c.loop(c.stopCh)
}

// Stop halts the control loop, leaving the tier at whatever size it
// reached — spawned replicas keep serving. Idempotent; Start may follow.
func (c *Controller) Stop() {
	c.mu.Lock()
	if !c.running {
		c.mu.Unlock()
		return
	}
	c.running = false
	close(c.stopCh)
	c.mu.Unlock()
	c.wg.Wait()
}

// Close stops the loop and drains everything the actuator spawned (when
// it supports that), returning the tier to its seed membership.
func (c *Controller) Close() error {
	c.Stop()
	if c.closed.Swap(true) {
		return nil
	}
	if closer, ok := c.cfg.Actuator.(io.Closer); ok {
		return closer.Close()
	}
	return nil
}

func (c *Controller) loop(stop <-chan struct{}) {
	defer c.wg.Done()
	ticker := time.NewTicker(c.cfg.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case now := <-ticker.C:
			// Actuation errors (a spawner hiccup, a drain refusal) are not
			// fatal to the loop: the next tick re-collects and re-decides
			// from actual state.
			_ = c.Step(context.Background(), now)
		}
	}
}

// Step runs one Collect → Decide → Actuate round at the given time.
func (c *Controller) Step(ctx context.Context, now time.Time) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	m := c.cfg.Collector.Collect()
	c.observe(m.Replicas)
	target := c.cfg.Policy.Decide(m, now)
	if target == m.Replicas || target < 1 {
		return nil
	}
	reached, err := c.cfg.Actuator.ScaleTo(ctx, target)
	c.observe(reached)
	if reached > m.Replicas {
		c.scaleUps.Add(1)
	} else if reached < m.Replicas {
		c.scaleDowns.Add(1)
	}
	if err != nil {
		return fmt.Errorf("autoscale %s: scaling %d → %d: %w", c.cfg.Name, m.Replicas, target, err)
	}
	return nil
}

func (c *Controller) observe(n int) {
	c.replicas.Store(int64(n))
	for {
		high := c.highWater.Load()
		if int64(n) <= high || c.highWater.CompareAndSwap(high, int64(n)) {
			return
		}
	}
}

// Status snapshots the controller's counters.
func (c *Controller) Status() Status {
	return Status{
		Name:       c.cfg.Name,
		Replicas:   int(c.replicas.Load()),
		HighWater:  int(c.highWater.Load()),
		ScaleUps:   c.scaleUps.Load(),
		ScaleDowns: c.scaleDowns.Load(),
	}
}
