package autoscale

import (
	"testing"
	"time"
)

// tick is the simulated control-loop cadence the policy tests step time
// with.
const tick = 100 * time.Millisecond

// decideStep is one simulated control round: the observed load, how far
// into the run it happens, and the replica count the policy must answer.
type decideStep struct {
	at       time.Duration
	replicas int
	inFlight int
	want     int
}

func TestTargetUtilizationDecide(t *testing.T) {
	base := time.Unix(1700000000, 0)
	cases := []struct {
		name   string
		policy TargetUtilization
		steps  []decideStep
	}{
		{
			// Inside the ±20% hysteresis band nothing moves, in either
			// direction of the target.
			name:   "hysteresis holds inside the band",
			policy: TargetUtilization{TargetInFlight: 10, Max: 8},
			steps: []decideStep{
				{at: 0, replicas: 2, inFlight: 20, want: 2},        // exactly on target
				{at: tick, replicas: 2, inFlight: 23, want: 2},     // +15%, inside band
				{at: 2 * tick, replicas: 2, inFlight: 17, want: 2}, // −15%, inside band
				{at: 3 * tick, replicas: 2, inFlight: 24, want: 2}, // +20% is the edge, not beyond it
				{at: 4 * tick, replicas: 2, inFlight: 25, want: 3}, // +25% finally moves it
				{at: 5 * tick, replicas: 3, inFlight: 30, want: 3}, // back on target after growing
				{at: 6 * tick, replicas: 3, inFlight: 0, want: 2},  // idle: one step down
			},
		},
		{
			// A spike scales straight to the count the load wants, not one
			// replica per round.
			name:   "scale-up jumps to demand",
			policy: TargetUtilization{TargetInFlight: 2, Max: 10},
			steps: []decideStep{
				{at: 0, replicas: 1, inFlight: 8, want: 4},
			},
		},
		{
			// Max clamps demand, Min floors the drain.
			name:   "min and max clamp",
			policy: TargetUtilization{TargetInFlight: 2, Min: 2, Max: 4, DownCooldown: tick / 2},
			steps: []decideStep{
				{at: 0, replicas: 2, inFlight: 40, want: 4},       // demand says 20, Max says 4
				{at: tick, replicas: 4, inFlight: 0, want: 3},     // drain begins
				{at: 2 * tick, replicas: 3, inFlight: 0, want: 2}, // one step at a time
				{at: 3 * tick, replicas: 2, inFlight: 0, want: 2}, // Min is the floor
			},
		},
		{
			// Consecutive scale-ups are gated by UpCooldown.
			name:   "up cooldown",
			policy: TargetUtilization{TargetInFlight: 2, Max: 10, UpCooldown: 3 * tick},
			steps: []decideStep{
				{at: 0, replicas: 1, inFlight: 6, want: 3},
				{at: tick, replicas: 3, inFlight: 18, want: 3},     // wants 9, cooling down
				{at: 2 * tick, replicas: 3, inFlight: 18, want: 3}, // still cooling
				{at: 3 * tick, replicas: 3, inFlight: 18, want: 9}, // cooldown over
			},
		},
		{
			// Consecutive scale-downs are gated by DownCooldown, and a
			// scale-up re-arms it: a tier that just grew must stay idle a
			// full DownCooldown before shrinking.
			name:   "down cooldown and re-arm",
			policy: TargetUtilization{TargetInFlight: 4, Max: 10, DownCooldown: 4 * tick},
			steps: []decideStep{
				{at: 0, replicas: 1, inFlight: 12, want: 3},       // up; arms the down clock at t=0
				{at: tick, replicas: 3, inFlight: 0, want: 3},     // idle but cooling down
				{at: 3 * tick, replicas: 3, inFlight: 0, want: 3}, // still cooling
				{at: 4 * tick, replicas: 3, inFlight: 0, want: 2}, // first step down
				{at: 5 * tick, replicas: 2, inFlight: 0, want: 2}, // cooling again
				{at: 8 * tick, replicas: 2, inFlight: 0, want: 1}, // second step down
			},
		},
		{
			// A flapping input — load oscillating across the band every
			// round — must not produce a flapping output: cooldowns hold the
			// tier at its scaled size through the oscillation.
			name:   "flapping input no flapping output",
			policy: TargetUtilization{TargetInFlight: 2, Max: 10, UpCooldown: 10 * tick, DownCooldown: 10 * tick},
			steps: []decideStep{
				{at: 0, replicas: 2, inFlight: 12, want: 6},        // the one real decision
				{at: tick, replicas: 6, inFlight: 0, want: 6},      // idle half-cycle: down blocked
				{at: 2 * tick, replicas: 6, inFlight: 36, want: 6}, // loaded half-cycle: up blocked
				{at: 3 * tick, replicas: 6, inFlight: 0, want: 6},
				{at: 4 * tick, replicas: 6, inFlight: 36, want: 6},
				{at: 5 * tick, replicas: 6, inFlight: 0, want: 6},
				{at: 6 * tick, replicas: 6, inFlight: 36, want: 6},
			},
		},
		{
			// Degenerate inputs hold instead of deciding garbage.
			name:   "degenerate inputs hold",
			policy: TargetUtilization{TargetInFlight: 2},
			steps: []decideStep{
				{at: 0, replicas: 0, inFlight: 5, want: 0}, // empty tier: nothing to scale
			},
		},
		{
			// An unset target disables the policy entirely.
			name:   "unset target holds",
			policy: TargetUtilization{},
			steps: []decideStep{
				{at: 0, replicas: 2, inFlight: 1000, want: 2},
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := tc.policy
			for i, stp := range tc.steps {
				got := p.Decide(Metrics{Replicas: stp.replicas, InFlight: stp.inFlight}, base.Add(stp.at))
				if got != stp.want {
					t.Fatalf("step %d (t=%v, %d in flight over %d replicas): decided %d, want %d",
						i, stp.at, stp.inFlight, stp.replicas, got, stp.want)
				}
			}
		})
	}
}

// TestTargetUtilizationSteadyNoDecisions is the policy-level face of the
// no-op-determinism invariant: a long steady run at target produces zero
// decisions.
func TestTargetUtilizationSteadyNoDecisions(t *testing.T) {
	p := TargetUtilization{TargetInFlight: 8, Max: 10}
	now := time.Unix(1700000000, 0)
	for i := 0; i < 1000; i++ {
		if got := p.Decide(Metrics{Replicas: 4, InFlight: 32}, now); got != 4 {
			t.Fatalf("round %d: steady load decided %d, want hold at 4", i, got)
		}
		now = now.Add(tick)
	}
}
