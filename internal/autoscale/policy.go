package autoscale

import (
	"math"
	"time"
)

// Policy is the Decide stage: one load sample in, desired replica count
// out. Returning the current count (or anything < 1) means "hold".
// Implementations carry their own state (cooldown clocks, hysteresis) and
// are called from a single goroutine.
type Policy interface {
	Decide(m Metrics, now time.Time) int
}

// TargetUtilization scales to hold per-replica in-flight load near a
// target, with a hysteresis band so noise inside ±Tolerance never moves
// the tier, and separate up/down cooldowns so a flapping input cannot
// produce a flapping output. Scale-up jumps straight to the replica count
// the observed load wants (a spike is served now, not after N intervals);
// scale-down steps one replica at a time (draining is cheap to retry,
// over-draining during a lull is not).
type TargetUtilization struct {
	// TargetInFlight is the per-replica in-flight load the tier should
	// run at. Required, > 0.
	TargetInFlight float64
	// Tolerance is the hysteresis half-width as a fraction of the target
	// (default 0.2): no decision while per-replica load sits inside
	// [Target·(1−Tol), Target·(1+Tol)].
	Tolerance float64
	// Min and Max bound the decided replica count. Min defaults to 1;
	// Max ≤ 0 means unbounded.
	Min, Max int
	// UpCooldown and DownCooldown are the minimum gaps after a scale-up
	// (resp. scale-down) decision before the next decision in the same
	// direction. A scale-up also resets the down clock — a tier that just
	// grew must prove itself idle for a full DownCooldown before
	// shrinking.
	UpCooldown, DownCooldown time.Duration

	lastUp, lastDown time.Time
}

// Decide implements Policy.
func (p *TargetUtilization) Decide(m Metrics, now time.Time) int {
	if p.TargetInFlight <= 0 || m.Replicas < 1 {
		return m.Replicas
	}
	tol := p.Tolerance
	if tol <= 0 {
		tol = 0.2
	}
	min := p.Min
	if min < 1 {
		min = 1
	}
	perReplica := float64(m.InFlight) / float64(m.Replicas)
	switch {
	case perReplica > p.TargetInFlight*(1+tol):
		if !p.lastUp.IsZero() && now.Sub(p.lastUp) < p.UpCooldown {
			return m.Replicas
		}
		want := int(math.Ceil(float64(m.InFlight) / p.TargetInFlight))
		want = p.clamp(want, min)
		if want <= m.Replicas {
			return m.Replicas
		}
		p.lastUp = now
		p.lastDown = now // a fresh scale-up re-arms the drain clock
		return want
	case perReplica < p.TargetInFlight*(1-tol):
		if m.Replicas <= min {
			return m.Replicas
		}
		if !p.lastDown.IsZero() && now.Sub(p.lastDown) < p.DownCooldown {
			return m.Replicas
		}
		p.lastDown = now
		return p.clamp(m.Replicas-1, min)
	default:
		return m.Replicas
	}
}

func (p *TargetUtilization) clamp(n, min int) int {
	if n < min {
		n = min
	}
	if p.Max > 0 && n > p.Max {
		n = p.Max
	}
	return n
}
