package autoscale

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"os/exec"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/anomaly"
	"repro/internal/transport"
)

// Spawner provisions one more replica for a tier and hands back its
// address plus a stop function that tears the replica down after the
// routing layer has drained it. Spawn is called from the actuator with
// the control loop's context; a spawner that cannot provision (ports
// exhausted, binary missing) returns the error and the actuator reports
// the partial scale-up.
type Spawner interface {
	Spawn(ctx context.Context) (addr string, stop func() error, err error)
}

// SpawnFunc adapts a function to the Spawner interface.
type SpawnFunc func(ctx context.Context) (string, func() error, error)

// Spawn implements Spawner.
func (f SpawnFunc) Spawn(ctx context.Context) (string, func() error, error) { return f(ctx) }

// ServeSpawner spawns in-process transport.Servers sharing one detector —
// the actuator for single-binary deployments (examples, tests,
// cluster.RunFleet): a "replica" is another listener over the same model,
// which is exactly what a process replica would serve.
func ServeSpawner(det anomaly.Detector, opt transport.ServerOptions) Spawner {
	return SpawnFunc(func(ctx context.Context) (string, func() error, error) {
		srv, err := transport.ServeWith("127.0.0.1:0", det, opt)
		if err != nil {
			return "", nil, err
		}
		stop := func() error {
			// The routing layer drained us already; give stragglers a
			// short graceful window, then cut.
			sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			if err := srv.Shutdown(sctx); err != nil {
				return srv.Close()
			}
			return nil
		}
		return srv.Addr(), stop, nil
	})
}

// ExecSpawner shells out to the hecnode binary (or any command printing
// the transport's "serving on <addr>" line) for process-level replicas —
// the deployment-shaped actuator. Each Spawn starts one child on an
// ephemeral port, waits for the serving line on stdout, and returns a
// stop that SIGTERMs the child (triggering hecnode's graceful drain) and
// reaps it.
type ExecSpawner struct {
	// Command is the binary to run (e.g. a built hecnode); Args its
	// arguments. Pass "-addr 127.0.0.1:0" style args so children never
	// collide on ports.
	Command string
	Args    []string
	// StartTimeout bounds the wait for the serving line (default 60 s —
	// a hecnode that trains at startup needs real time; -load/-fetch
	// nodes come up in milliseconds).
	StartTimeout time.Duration
	// StopTimeout bounds the SIGTERM-to-reaped window before the child
	// is killed (default 15 s).
	StopTimeout time.Duration
}

// Spawn implements Spawner.
func (e *ExecSpawner) Spawn(ctx context.Context) (string, func() error, error) {
	startTO := e.StartTimeout
	if startTO <= 0 {
		startTO = 60 * time.Second
	}
	cmd := exec.Command(e.Command, e.Args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return "", nil, err
	}
	if err := cmd.Start(); err != nil {
		return "", nil, err
	}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if i := strings.Index(line, "serving on "); i >= 0 {
				select {
				case addrCh <- strings.TrimSpace(line[i+len("serving on "):]):
				default:
				}
			}
		}
		// Keep draining so the child never blocks on a full stdout pipe.
		io.Copy(io.Discard, stdout)
	}()

	timer := time.NewTimer(startTO)
	defer timer.Stop()
	select {
	case addr := <-addrCh:
		return addr, func() error { return e.stop(cmd) }, nil
	case <-ctx.Done():
		cmd.Process.Kill()
		cmd.Wait()
		return "", nil, ctx.Err()
	case <-timer.C:
		cmd.Process.Kill()
		cmd.Wait()
		return "", nil, fmt.Errorf("autoscale: %s did not report a serving address within %v", e.Command, startTO)
	}
}

func (e *ExecSpawner) stop(cmd *exec.Cmd) error {
	stopTO := e.StopTimeout
	if stopTO <= 0 {
		stopTO = 15 * time.Second
	}
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		cmd.Process.Kill()
		return cmd.Wait()
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	timer := time.NewTimer(stopTO)
	defer timer.Stop()
	select {
	case err := <-done:
		var exitErr *exec.ExitError
		if errors.As(err, &exitErr) {
			// SIGTERM-driven exits are the expected drain path.
			return nil
		}
		return err
	case <-timer.C:
		cmd.Process.Kill()
		<-done
		return fmt.Errorf("autoscale: %s ignored SIGTERM for %v; killed", e.Command, stopTO)
	}
}

// poolSpawner is a Spawner over a fixed address pool — handy in tests
// where the replicas already exist and "spawning" means admitting the
// next standby.
type poolSpawner struct {
	mu    sync.Mutex
	addrs []string
}

// PoolSpawner returns a Spawner that hands out the given addresses in
// order and fails when they run out. Stops are no-ops: the standbys
// outlive their membership.
func PoolSpawner(addrs ...string) Spawner {
	p := &poolSpawner{addrs: append([]string(nil), addrs...)}
	return SpawnFunc(func(ctx context.Context) (string, func() error, error) {
		p.mu.Lock()
		defer p.mu.Unlock()
		if len(p.addrs) == 0 {
			return "", nil, errors.New("autoscale: standby pool exhausted")
		}
		addr := p.addrs[0]
		p.addrs = p.addrs[1:]
		return addr, func() error { return nil }, nil
	})
}
