package autoscale

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/anomaly"
	"repro/internal/routing"
	"repro/internal/transport"
)

// stubDetector answers instantly; windows with a first value > 1 are
// anomalous.
type stubDetector struct{}

func (stubDetector) Name() string { return "stub" }

func (stubDetector) Detect(frames [][]float64) (anomaly.Verdict, error) {
	if len(frames) == 0 || len(frames[0]) == 0 {
		return anomaly.Verdict{}, fmt.Errorf("empty window")
	}
	v := anomaly.Verdict{MinLogPD: -frames[0][0]}
	if frames[0][0] > 1 {
		v.Anomaly = true
		v.Confident = true
	}
	return v, nil
}

func (stubDetector) NumParams() int           { return 1 }
func (stubDetector) FlopsPerWindow(int) int64 { return 1 }

func newSet(t *testing.T) (*routing.ReplicaSet, *transport.Server) {
	t.Helper()
	srv, err := transport.Serve("127.0.0.1:0", stubDetector{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	set, err := routing.New(routing.Config{Addrs: []string{srv.Addr()}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { set.Close() })
	return set, srv
}

// fakePolicy returns a scripted sequence of targets, then holds.
type fakePolicy struct{ targets []int }

func (p *fakePolicy) Decide(m Metrics, now time.Time) int {
	if len(p.targets) == 0 {
		return m.Replicas
	}
	t := p.targets[0]
	p.targets = p.targets[1:]
	return t
}

// TestSetActuatorScalesAndDrains: ScaleTo grows the set through the
// spawner, shrinks it newest-first, refuses to drain below the seed
// membership, and Close returns the tier to its floor.
func TestSetActuatorScalesAndDrains(t *testing.T) {
	set, _ := newSet(t)
	spawner := ServeSpawner(stubDetector{}, transport.ServerOptions{})
	act := NewSetActuator(set, spawner)
	ctx := context.Background()

	if n, err := act.ScaleTo(ctx, 4); err != nil || n != 4 {
		t.Fatalf("ScaleTo(4) = %d, %v", n, err)
	}
	if got := set.Size(); got != 4 {
		t.Fatalf("set size after scale-up = %d, want 4", got)
	}
	// The spawned replicas actually serve.
	for i := 0; i < 8; i++ {
		if _, err := set.Detect([][]float64{{0.5}}); err != nil {
			t.Fatalf("detect on scaled set: %v", err)
		}
	}
	if n, err := act.ScaleTo(ctx, 2); err != nil || n != 2 {
		t.Fatalf("ScaleTo(2) = %d, %v", n, err)
	}
	// The floor is the seed membership: target 0 drains the spawned
	// replica but refuses to touch the seed.
	if n, err := act.ScaleTo(ctx, 0); err == nil || n != 1 {
		t.Fatalf("ScaleTo(0) = %d, %v; want 1 with a refusal", n, err)
	}
	if n, err := act.ScaleTo(ctx, 3); err != nil || n != 3 {
		t.Fatalf("re-grow ScaleTo(3) = %d, %v", n, err)
	}
	if err := act.Close(); err != nil {
		t.Fatalf("actuator close: %v", err)
	}
	if got := set.Size(); got != 1 {
		t.Fatalf("set size after actuator close = %d, want the seed 1", got)
	}
	if _, err := set.Detect([][]float64{{0.5}}); err != nil {
		t.Fatalf("seed replica unusable after close: %v", err)
	}
}

// TestSetActuatorPartialFailure: a spawner that dies mid-scale-up reports
// the count actually reached, and the replicas it did provision serve.
func TestSetActuatorPartialFailure(t *testing.T) {
	set, _ := newSet(t)
	good := ServeSpawner(stubDetector{}, transport.ServerOptions{})
	var calls atomic.Int64
	flaky := SpawnFunc(func(ctx context.Context) (string, func() error, error) {
		if calls.Add(1) > 1 {
			return "", nil, errors.New("spawner out of capacity")
		}
		return good.Spawn(ctx)
	})
	act := NewSetActuator(set, flaky)
	defer act.Close()

	n, err := act.ScaleTo(context.Background(), 4)
	if err == nil {
		t.Fatal("partial scale-up reported no error")
	}
	if n != 2 {
		t.Fatalf("partial scale-up reached %d, want 2", n)
	}
	if got := set.Size(); got != 2 {
		t.Fatalf("set size after partial scale-up = %d, want 2", got)
	}
}

// TestControllerStepActuatesDecision: one Step collects, decides and
// actuates; counters reflect the ops; a hold decision actuates nothing.
func TestControllerStepActuatesDecision(t *testing.T) {
	set, _ := newSet(t)
	act := NewSetActuator(set, ServeSpawner(stubDetector{}, transport.ServerOptions{}))
	ctl, err := New(Config{
		Name:      "test",
		Collector: CollectSet(set),
		Policy:    &fakePolicy{targets: []int{3, 3, 1}},
		Actuator:  act,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()

	now := time.Now()
	if err := ctl.Step(context.Background(), now); err != nil {
		t.Fatal(err)
	}
	if got := set.Size(); got != 3 {
		t.Fatalf("size after scale-up step = %d, want 3", got)
	}
	// Second decision says 3 with 3 serving: a hold.
	if err := ctl.Step(context.Background(), now); err != nil {
		t.Fatal(err)
	}
	if err := ctl.Step(context.Background(), now); err != nil {
		t.Fatal(err)
	}
	if got := set.Size(); got != 1 {
		t.Fatalf("size after drain step = %d, want 1", got)
	}
	st := ctl.Status()
	if st.ScaleUps != 1 || st.ScaleDowns != 1 {
		t.Fatalf("scale ops = %d up / %d down, want 1/1", st.ScaleUps, st.ScaleDowns)
	}
	if st.HighWater != 3 {
		t.Fatalf("high water = %d, want 3", st.HighWater)
	}
	if st.Name != "test" {
		t.Fatalf("status name = %q", st.Name)
	}
}

// TestControllerLoopLeakFree: the ticker loop starts, scales under a
// scripted policy, stops, and Close leaves no goroutines or spawned
// replicas behind.
func TestControllerLoopLeakFree(t *testing.T) {
	baseline := runtime.NumGoroutine()
	srv, err := transport.Serve("127.0.0.1:0", stubDetector{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	set, err := routing.New(routing.Config{Addrs: []string{srv.Addr()}})
	if err != nil {
		t.Fatal(err)
	}
	act := NewSetActuator(set, ServeSpawner(stubDetector{}, transport.ServerOptions{}))
	ctl, err := New(Config{
		Collector: CollectSet(set),
		Policy:    &fakePolicy{targets: []int{2}},
		Actuator:  act,
		Interval:  time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctl.Start()
	ctl.Start() // idempotent
	deadline := time.Now().Add(5 * time.Second)
	for set.Size() != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("loop never actuated: size %d", set.Size())
		}
		time.Sleep(time.Millisecond)
	}
	ctl.Stop()
	ctl.Stop() // idempotent
	if err := ctl.Close(); err != nil {
		t.Fatalf("controller close: %v", err)
	}
	if got := set.Size(); got != 1 {
		t.Fatalf("size after controller close = %d, want the seed 1", got)
	}
	set.Close()
	srv.Close()
	deadline = time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d > baseline %d", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestNewValidates: a controller without all three stages is refused.
func TestNewValidates(t *testing.T) {
	set, _ := newSet(t)
	cases := []Config{
		{},
		{Collector: CollectSet(set), Policy: &TargetUtilization{TargetInFlight: 1}},
		{Collector: CollectSet(set), Actuator: NewSetActuator(set, PoolSpawner())},
		{Policy: &TargetUtilization{TargetInFlight: 1}, Actuator: NewSetActuator(set, PoolSpawner())},
	}
	for i, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Fatalf("case %d: incomplete config accepted", i)
		}
	}
}

// TestPoolSpawner: hands out standbys in order, then reports exhaustion.
func TestPoolSpawner(t *testing.T) {
	sp := PoolSpawner("a:1", "b:2")
	ctx := context.Background()
	a, stop, err := sp.Spawn(ctx)
	if err != nil || a != "a:1" {
		t.Fatalf("first spawn = %q, %v", a, err)
	}
	if err := stop(); err != nil {
		t.Fatalf("pool stop: %v", err)
	}
	if b, _, err := sp.Spawn(ctx); err != nil || b != "b:2" {
		t.Fatalf("second spawn = %q, %v", b, err)
	}
	if _, _, err := sp.Spawn(ctx); err == nil {
		t.Fatal("exhausted pool kept spawning")
	}
}

// TestCollectSet: the built-in collector aggregates membership, health
// and load signals from the set's status.
func TestCollectSet(t *testing.T) {
	set, _ := newSet(t)
	for i := 0; i < 4; i++ {
		if _, err := set.Detect([][]float64{{0.5}}); err != nil {
			t.Fatal(err)
		}
	}
	m := CollectSet(set).Collect()
	if m.Replicas != 1 || m.Healthy != 1 {
		t.Fatalf("collected %+v, want 1 replica, 1 healthy", m)
	}
	if m.InFlight != 0 {
		t.Fatalf("idle set collected %d in flight", m.InFlight)
	}
	if m.P99Ms <= 0 {
		t.Fatalf("no service signal collected: %+v", m)
	}
}
