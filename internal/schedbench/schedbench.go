// Package schedbench drives the canonical deadline-overload burst against
// a live scheduling server, the shared harness behind the hecbench
// scheduler comparison and the examples/cluster -sched demo (and the
// mirror of the transport package's H14-style CI test).
//
// The burst is deterministic by construction: one service slot, 32 jobs of
// 10 ms service time whose deadlines grow 11 ms per job index plus 20 ms
// slack, arriving in a fixed shuffled order while a holder request pins
// the slot. Because the deadline slope exceeds the service time, an EDF
// schedule is feasible — EDF meets every deadline — while any discipline
// that serves out of deadline order burns its slot on jobs whose deadlines
// already passed their feasibility window and must miss: FIFO lands at
// 20/32 under the pinned permutation and reverse-EDF lower still. Expired
// jobs cost the server nothing beyond their queue seat: the client's
// deadline fires first, its cancel frame withdraws the queued entry, and
// the scheduler sheds whatever expired entries remain at dequeue.
package schedbench

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/anomaly"
	"repro/internal/sched"
	"repro/internal/transport"
)

// Burst geometry. Kept identical to the transport package's H14 test so
// the CI gate, the benchmark JSON and the demo all measure one model.
const (
	burstJobs = 32
	serviceMs = 10
	slopeMs   = 11
	slackMs   = 20
)

// burstPerm is the fixed arrival order (a seeded shuffle of 0..31 pinned
// as a literal): job i carries deadline (i+1)*slope + slack from the burst
// anchor. Deterministic model: EDF 32/32 met, FIFO 20/32, reverse-EDF
// 18/32.
var burstPerm = [burstJobs]int{9, 24, 14, 10, 28, 1, 5, 3, 22, 21, 13, 12, 23, 16, 27, 6, 7, 29, 8, 25, 0, 26, 2, 30, 20, 31, 19, 11, 4, 17, 18, 15}

// Result is one policy's showing on the burst.
type Result struct {
	// Policy is the queue discipline's name.
	Policy string `json:"policy"`
	// Met is how many of Total jobs finished inside their deadline.
	Met   int `json:"met"`
	Total int `json:"total"`
	// HitRate is Met/Total.
	HitRate float64 `json:"hit_rate"`
	// P99MetMs is the 99th-percentile completion latency (ms from the
	// burst anchor) over the jobs that met their deadline. Survivorship
	// applies — a policy that sheds aggressively can post a flattering
	// number here — so HitRate is the headline metric and this is color.
	P99MetMs float64 `json:"p99_met_ms"`
	// Busy, Expired and Canceled are the server scheduler's counters
	// after the burst: queue-full refusals, entries shed at dequeue past
	// their deadline, and entries withdrawn by client cancel frames.
	Busy     uint64 `json:"busy"`
	Expired  uint64 `json:"expired"`
	Canceled uint64 `json:"canceled"`
}

// burstDetector paces the burst: a negative first value blocks until
// release is closed (the slot holder), a positive one sleeps that many
// milliseconds (one job's service time).
type burstDetector struct{ release chan struct{} }

func (burstDetector) Name() string { return "schedbench" }

func (d burstDetector) Detect(frames [][]float64) (anomaly.Verdict, error) {
	if len(frames) == 0 || len(frames[0]) == 0 {
		return anomaly.Verdict{}, fmt.Errorf("empty window")
	}
	switch v := frames[0][0]; {
	case v < 0:
		<-d.release
	case v > 0:
		time.Sleep(time.Duration(v * float64(time.Millisecond)))
	}
	return anomaly.Verdict{}, nil
}

func (burstDetector) NumParams() int           { return 1 }
func (burstDetector) FlopsPerWindow(int) int64 { return 1 }

// pollStats waits until cond holds on the server's scheduler stats.
func pollStats(srv *transport.Server, what string, cond func(sched.Stats) bool) error {
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if st, ok := srv.SchedStats(); ok && cond(st) {
			return nil
		}
		time.Sleep(2 * time.Millisecond)
	}
	st, _ := srv.SchedStats()
	return fmt.Errorf("schedbench: timed out waiting for %s (stats %+v)", what, st)
}

// RunBurst stands up a one-slot scheduling server running policy, drives
// the canonical overload burst through it, and reports how the policy
// fared. Each run takes a little over two seconds of wall clock (a fixed
// 1.5 s enqueue budget plus the burst itself).
func RunBurst(policy sched.Policy) (Result, error) {
	det := burstDetector{release: make(chan struct{})}
	srv, err := transport.ServeWith("127.0.0.1:0", det, transport.ServerOptions{
		Sched: &sched.Config{MaxConcurrent: 1, MaxQueue: burstJobs * 2, Policy: policy},
	})
	if err != nil {
		return Result{}, err
	}
	defer srv.Close()
	cli, err := transport.Dial(srv.Addr(), 0)
	if err != nil {
		return Result{}, err
	}
	defer cli.Close()

	// The holder pins the single slot so all 32 jobs are queued — in
	// burstPerm order, serialized by watching the queue grow — before any
	// service happens; the anchor gives enqueueing a fixed budget so every
	// deadline is relative to the moment service actually starts.
	holderDone := make(chan struct{})
	go func() {
		defer close(holderDone)
		_, _ = cli.Detect([][]float64{{-1}})
	}()
	if err := pollStats(srv, "holder running", func(st sched.Stats) bool { return st.Running == 1 }); err != nil {
		return Result{}, err
	}

	anchor := time.Now().Add(1500 * time.Millisecond)
	var mu sync.Mutex
	var metMs []float64
	var wg sync.WaitGroup
	for n, i := range burstPerm {
		deadline := anchor.Add(time.Duration(slopeMs*(i+1)+slackMs) * time.Millisecond)
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithDeadline(context.Background(), deadline)
			defer cancel()
			if _, err := cli.DetectContext(ctx, [][]float64{{serviceMs}}); err == nil {
				ms := float64(time.Since(anchor)) / float64(time.Millisecond)
				mu.Lock()
				metMs = append(metMs, ms)
				mu.Unlock()
			}
		}()
		if err := pollStats(srv, "burst enqueued", func(st sched.Stats) bool { return st.Queued == n+1 }); err != nil {
			return Result{}, err
		}
	}
	if !time.Now().Before(anchor) {
		return Result{}, fmt.Errorf("schedbench: burst setup overran its %v anchor budget", 1500*time.Millisecond)
	}
	time.Sleep(time.Until(anchor))
	close(det.release)
	<-holderDone
	wg.Wait()

	st, _ := srv.SchedStats()
	res := Result{
		Policy:   policy.Name(),
		Met:      len(metMs),
		Total:    burstJobs,
		HitRate:  float64(len(metMs)) / burstJobs,
		Busy:     st.Busy,
		Expired:  st.Expired,
		Canceled: st.Canceled,
	}
	if len(metMs) > 0 {
		sort.Float64s(metMs)
		res.P99MetMs = metMs[(len(metMs)*99)/100]
	}
	return res, nil
}
