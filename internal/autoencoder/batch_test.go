package autoencoder

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/anomaly"
)

// trainWeeks synthesises n smooth "normal" weeks of width dim.
func trainWeeks(n, dim int, rng *rand.Rand) [][]float64 {
	out := make([][]float64, n)
	for w := range out {
		week := make([]float64, dim)
		phase := rng.Float64() * 2 * math.Pi
		for i := range week {
			week[i] = math.Sin(2*math.Pi*float64(i)/float64(dim)+phase) + 0.05*rng.NormFloat64()
		}
		out[w] = week
	}
	return out
}

func toFrames(week []float64) [][]float64 {
	frames := make([][]float64, len(week))
	for i, v := range week {
		frames[i] = []float64{v}
	}
	return frames
}

func fittedModel(t testing.TB, bs int) *Model {
	t.Helper()
	rng := rand.New(rand.NewSource(5))
	m, err := New(TierEdge, 84, rng)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultTrainConfig()
	cfg.Epochs = 10
	cfg.BatchSize = bs
	if _, err := m.Fit(trainWeeks(24, 84, rng), cfg, rng); err != nil {
		t.Fatal(err)
	}
	return m
}

// TestDetectBatchMatchesDetect pins the vectorised inference entry point to
// the per-window path: identical verdicts, bit for bit (the equivalence
// guarantee of the batched engine, well inside the 1e-9 budget).
func TestDetectBatchMatchesDetect(t *testing.T) {
	m := fittedModel(t, 1)
	rng := rand.New(rand.NewSource(7))
	weeks := trainWeeks(9, 84, rng)
	// Make some windows anomalous so both verdict polarities are covered.
	for i := 0; i < len(weeks); i += 3 {
		weeks[i][10] += 4
		weeks[i][11] += 4
	}
	windows := make([][][]float64, len(weeks))
	for i, w := range weeks {
		windows[i] = toFrames(w)
	}
	got, err := m.DetectBatch(windows)
	if err != nil {
		t.Fatal(err)
	}
	sawAnomaly, sawNormal := false, false
	for i, w := range windows {
		want, err := m.Detect(w)
		if err != nil {
			t.Fatal(err)
		}
		if got[i] != want {
			t.Fatalf("window %d: batch verdict %+v vs per-window %+v", i, got[i], want)
		}
		if want.Anomaly {
			sawAnomaly = true
		} else {
			sawNormal = true
		}
	}
	if !sawAnomaly || !sawNormal {
		t.Fatalf("test windows did not cover both verdicts (anomaly=%v normal=%v)", sawAnomaly, sawNormal)
	}
}

// TestFitMinibatchTrains checks that minibatch SGD still learns: a batch-8
// model must reconstruct normal data well enough to flag a gross anomaly.
func TestFitMinibatchTrains(t *testing.T) {
	m := fittedModel(t, 8)
	rng := rand.New(rand.NewSource(11))
	normal := trainWeeks(1, 84, rng)[0]
	v, err := m.Detect(toFrames(normal))
	if err != nil {
		t.Fatal(err)
	}
	if v.Anomaly {
		t.Fatal("minibatch-trained model flags normal data")
	}
	spiked := append([]float64(nil), normal...)
	for i := 20; i < 30; i++ {
		spiked[i] += 6
	}
	v, err = m.Detect(toFrames(spiked))
	if err != nil {
		t.Fatal(err)
	}
	if !v.Anomaly {
		t.Fatal("minibatch-trained model misses a gross anomaly")
	}
}

// TestDetectAllUsesBatchPath checks the anomaly.DetectAll seam dispatches to
// the autoencoder's DetectBatch and returns per-window-identical verdicts.
func TestDetectAllUsesBatchPath(t *testing.T) {
	m := fittedModel(t, 1)
	if _, ok := interface{}(m).(anomaly.BatchDetector); !ok {
		t.Fatal("autoencoder.Model must implement anomaly.BatchDetector")
	}
	rng := rand.New(rand.NewSource(13))
	weeks := trainWeeks(5, 84, rng)
	windows := make([][][]float64, len(weeks))
	for i, w := range weeks {
		windows[i] = toFrames(w)
	}
	got, err := anomaly.DetectAll(m, windows)
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range windows {
		want, err := m.Detect(w)
		if err != nil {
			t.Fatal(err)
		}
		if got[i] != want {
			t.Fatalf("window %d diverges through DetectAll", i)
		}
	}
}

func TestDetectBatchValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	m, err := New(TierEdge, 84, rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.DetectBatch(make([][][]float64, 1)); err == nil {
		t.Fatal("DetectBatch on an unfitted model must error")
	}
	fitted := fittedModel(t, 1)
	if out, err := fitted.DetectBatch(nil); err != nil || out != nil {
		t.Fatalf("empty batch: got (%v, %v), want (nil, nil)", out, err)
	}
	if _, err := fitted.DetectBatch([][][]float64{make([][]float64, 3)}); err == nil {
		t.Fatal("wrong window length must error")
	}
	bad := toFrames(trainWeeks(1, 84, rng)[0])
	bad[5] = []float64{1, 2}
	if _, err := fitted.DetectBatch([][][]float64{bad}); err == nil {
		t.Fatal("multivariate frame must error")
	}
}

// benchWeeks and the Fit benchmarks below measure the training-throughput
// claim of the batched engine: one epoch of minibatch-32 training vs one
// epoch of per-sample training on identical data and model shape.
func benchFit(b *testing.B, bs int) {
	rng := rand.New(rand.NewSource(1))
	weeks := trainWeeks(128, 672, rng)
	cfg := DefaultTrainConfig()
	cfg.Epochs = 1
	cfg.BatchSize = bs
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		m, err := New(TierCloud, 672, rand.New(rand.NewSource(2)))
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := m.Fit(weeks, cfg, rand.New(rand.NewSource(3))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFitPerSample is the legacy trajectory: one optimiser step per
// sample, batch-of-1 matrices.
func BenchmarkFitPerSample(b *testing.B) { benchFit(b, 1) }

// BenchmarkFitBatch32 is minibatch SGD at the paper-scale batch: one
// batch-averaged step per 32 samples through the blocked kernels.
func BenchmarkFitBatch32(b *testing.B) { benchFit(b, 32) }
