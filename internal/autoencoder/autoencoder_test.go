package autoencoder

import (
	"math/rand"
	"testing"

	"repro/internal/dataset"
)

// tinyPower generates a small dataset shared across tests in this package.
func tinyPower(t *testing.T) *dataset.PowerDataset {
	t.Helper()
	ds, err := dataset.GeneratePower(dataset.PowerConfig{
		TrainWeeks: 24, TestWeeks: 30, PolicyWeeks: 4,
		AnomalyRate: 0.5, Noise: 0.03, Seed: 17,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func trainValues(ds *dataset.PowerDataset) [][]float64 {
	out := make([][]float64, len(ds.Train))
	for i, s := range ds.Train {
		out[i] = s.Values
	}
	return out
}

func framesOf(s dataset.UniSample) [][]float64 {
	frames := make([][]float64, len(s.Values))
	for i, v := range s.Values {
		frames[i] = []float64{v}
	}
	return frames
}

func TestTierString(t *testing.T) {
	if TierIoT.String() != "IoT" || TierEdge.String() != "Edge" || TierCloud.String() != "Cloud" {
		t.Fatal("tier names wrong")
	}
	if Tier(9).String() != "Tier(9)" {
		t.Fatal("out-of-range tier name wrong")
	}
}

func TestNewValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := New(TierIoT, 10, rng); err == nil {
		t.Fatal("tiny input dim must be rejected")
	}
	if _, err := New(Tier(9), dataset.ReadingsPerWeek, rng); err == nil {
		t.Fatal("unknown tier must be rejected")
	}
}

func TestCapacityOrderingMatchesPaper(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	iot, err := New(TierIoT, dataset.ReadingsPerWeek, rng)
	if err != nil {
		t.Fatal(err)
	}
	edge, err := New(TierEdge, dataset.ReadingsPerWeek, rng)
	if err != nil {
		t.Fatal(err)
	}
	cloud, err := New(TierCloud, dataset.ReadingsPerWeek, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Paper Fig. 1a: 3, 5, 7 layers → 1, 3, 5 hidden Dense layers (plus the
	// output layer and activations).
	if got := len(iot.Net.Layers); got != 3 { // Dense+Tanh+Dense
		t.Fatalf("AE-IoT has %d net layers", got)
	}
	if got := len(edge.Net.Layers); got != 7 {
		t.Fatalf("AE-Edge has %d net layers", got)
	}
	if got := len(cloud.Net.Layers); got != 11 {
		t.Fatalf("AE-Cloud has %d net layers", got)
	}
	if !(iot.NumParams() < edge.NumParams() && edge.NumParams() < cloud.NumParams()) {
		t.Fatalf("params not increasing: %d %d %d", iot.NumParams(), edge.NumParams(), cloud.NumParams())
	}
	if !(iot.FlopsPerWindow(0) < edge.FlopsPerWindow(0) && edge.FlopsPerWindow(0) < cloud.FlopsPerWindow(0)) {
		t.Fatal("flops not increasing")
	}
	if iot.Name() != "AE-IoT" || cloud.Name() != "AE-Cloud" {
		t.Fatal("model names wrong")
	}
}

func TestDetectBeforeFitErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m, err := New(TierIoT, dataset.ReadingsPerWeek, rng)
	if err != nil {
		t.Fatal(err)
	}
	ds := tinyPower(t)
	if _, err := m.Detect(framesOf(ds.Test[0])); err == nil {
		t.Fatal("Detect before Fit must error")
	}
}

func TestFitValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m, err := New(TierIoT, dataset.ReadingsPerWeek, rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Fit(nil, DefaultTrainConfig(), rng); err == nil {
		t.Fatal("empty training set must be rejected")
	}
	cfg := DefaultTrainConfig()
	cfg.Epochs = 0
	if _, err := m.Fit([][]float64{make([]float64, dataset.ReadingsPerWeek)}, cfg, rng); err == nil {
		t.Fatal("zero epochs must be rejected")
	}
}

// TestFitAndDetect trains the small AE-IoT model and checks it detects easy
// anomalies while keeping false positives low — the end-to-end univariate
// pipeline at reduced scale.
func TestFitAndDetect(t *testing.T) {
	ds := tinyPower(t)
	rng := rand.New(rand.NewSource(5))
	m, err := New(TierIoT, dataset.ReadingsPerWeek, rng)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultTrainConfig()
	cfg.Epochs = 25
	loss, err := m.Fit(trainValues(ds), cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	if loss <= 0 {
		t.Fatalf("final loss = %g", loss)
	}
	if m.Scorer == nil {
		t.Fatal("Fit must attach a scorer")
	}

	var missedEasy, falsePos, normals, easies int
	for _, s := range ds.Test {
		v, err := m.Detect(framesOf(s))
		if err != nil {
			t.Fatal(err)
		}
		switch {
		case !s.Label:
			normals++
			if v.Anomaly {
				falsePos++
			}
		case s.Hardness == dataset.HardnessEasy:
			easies++
			if !v.Anomaly {
				missedEasy++
			}
		}
	}
	if easies == 0 || normals == 0 {
		t.Skip("test split lacks both classes")
	}
	if missedEasy > easies/3 {
		t.Fatalf("missed %d of %d easy anomalies", missedEasy, easies)
	}
	if falsePos > normals/3 {
		t.Fatalf("%d false positives on %d normals", falsePos, normals)
	}
}

func TestDetectRejectsBadShapes(t *testing.T) {
	ds := tinyPower(t)
	rng := rand.New(rand.NewSource(6))
	m, err := New(TierIoT, dataset.ReadingsPerWeek, rng)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultTrainConfig()
	cfg.Epochs = 2
	if _, err := m.Fit(trainValues(ds), cfg, rng); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Detect([][]float64{{1}, {2}}); err == nil {
		t.Fatal("short window must be rejected")
	}
	bad := framesOf(ds.Test[0])
	bad[0] = []float64{1, 2}
	if _, err := m.Detect(bad); err == nil {
		t.Fatal("multi-dim frames must be rejected")
	}
}

// TestQuantizePreservesDetection reproduces the paper's observation that
// FP16 compression does not change detection performance.
func TestQuantizePreservesDetection(t *testing.T) {
	ds := tinyPower(t)
	rng := rand.New(rand.NewSource(7))
	m, err := New(TierIoT, dataset.ReadingsPerWeek, rng)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultTrainConfig()
	cfg.Epochs = 15
	if _, err := m.Fit(trainValues(ds), cfg, rng); err != nil {
		t.Fatal(err)
	}
	before := make([]bool, len(ds.Test))
	for i, s := range ds.Test {
		v, err := m.Detect(framesOf(s))
		if err != nil {
			t.Fatal(err)
		}
		before[i] = v.Anomaly
	}
	if worst := m.Quantize(); worst > 0.01 {
		t.Fatalf("quantisation error %g unexpectedly large", worst)
	}
	changed := 0
	for i, s := range ds.Test {
		v, err := m.Detect(framesOf(s))
		if err != nil {
			t.Fatal(err)
		}
		if v.Anomaly != before[i] {
			changed++
		}
	}
	if changed > len(ds.Test)/20 {
		t.Fatalf("FP16 quantisation flipped %d of %d verdicts", changed, len(ds.Test))
	}
}
