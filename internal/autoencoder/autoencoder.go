// Package autoencoder builds the paper's univariate anomaly-detection
// suite: three autoencoders of increasing depth — AE-IoT (3 layers),
// AE-Edge (5 layers) and AE-Cloud (7 layers) — each paired with a Gaussian
// logPD scorer fitted on its reconstruction errors over normal training
// weeks.
//
// Layer counts follow the Keras convention the paper uses (input, hidden…,
// output), so AE-IoT has one hidden layer, AE-Edge three and AE-Cloud five.
// Widths are scaled to the synthetic power dataset's 672-reading weekly
// window while preserving the paper's strict capacity ordering
// IoT < Edge < Cloud (see DESIGN.md §2).
package autoencoder

import (
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/anomaly"
	"repro/internal/mat"
	"repro/internal/nn"
)

// Tier identifies the HEC layer a model is built for.
type Tier int

// The three tiers, bottom (IoT) to top (Cloud).
const (
	TierIoT Tier = iota + 1
	TierEdge
	TierCloud
)

// String implements fmt.Stringer.
func (t Tier) String() string {
	switch t {
	case TierIoT:
		return "IoT"
	case TierEdge:
		return "Edge"
	case TierCloud:
		return "Cloud"
	default:
		return fmt.Sprintf("Tier(%d)", int(t))
	}
}

// Model is one autoencoder anomaly detector.
type Model struct {
	// ModelName is the paper's model name, e.g. "AE-IoT".
	ModelName string
	// Net is the underlying dense network.
	Net *nn.Sequential
	// Scorer is set by Fit; nil until the model is trained.
	Scorer *anomaly.Scorer
	// Conf is the confidence rule used by Detect.
	Conf anomaly.Confidence

	inputDim int
}

// hidden widths per tier for a 672-wide input; each tier strictly grows
// both depth and parameter count. The bottlenecks are sized against the
// synthetic power data's intrinsic variation (~27 jitter parameters per
// week): AE-IoT's bottleneck (6) cannot encode the natural day-shape
// jitter, AE-Edge's (16) captures most of it, and AE-Cloud's (32, behind
// wider codecs) captures all of it — which is what grades their detection
// of subtle anomalies.
func tierWidths(tier Tier, inputDim int) ([]int, error) {
	switch tier {
	case TierIoT:
		return []int{inputDim / 112}, nil // 672 -> 6
	case TierEdge:
		return []int{inputDim / 14, inputDim / 42, inputDim / 14}, nil // 48-16-48
	case TierCloud:
		return []int{inputDim / 2, inputDim / 6, inputDim / 21, inputDim / 6, inputDim / 2}, nil // 336-112-32-112-336
	default:
		return nil, fmt.Errorf("autoencoder: unknown tier %d", int(tier))
	}
}

// New builds an untrained autoencoder for the given HEC tier and input
// width.
func New(tier Tier, inputDim int, rng *rand.Rand) (*Model, error) {
	if inputDim < 42 {
		return nil, fmt.Errorf("autoencoder: input dim %d too small", inputDim)
	}
	widths, err := tierWidths(tier, inputDim)
	if err != nil {
		return nil, err
	}
	var layers []nn.Layer
	prev := inputDim
	for _, w := range widths {
		layers = append(layers, nn.NewDense(prev, w, rng), nn.NewActivation(nn.ActReLU))
		prev = w
	}
	layers = append(layers, nn.NewDense(prev, inputDim, rng)) // linear output
	return &Model{
		ModelName: "AE-" + tier.String(),
		Net:       nn.NewSequential(layers...),
		Conf:      anomaly.DefaultConfidence(),
		inputDim:  inputDim,
	}, nil
}

// TrainConfig parameterises Fit.
type TrainConfig struct {
	// Epochs over the training set.
	Epochs int
	// LR is the Adam learning rate.
	LR float64
	// WeightDecay is the ℓ2 kernel regularisation (the paper uses 1e-4).
	WeightDecay float64
	// ScorerReg is the ridge added to the error Gaussian's covariance.
	ScorerReg float64
	// BatchSize groups samples per optimiser step through the batched tensor
	// engine (minibatch SGD with batch-averaged gradients). Values < 2 keep
	// the paper's per-sample stochastic updates — the default, and with the
	// small weekly training sets the right quality/step tradeoff. Every
	// batch size runs the same vectorised code path; at 1 the training
	// trajectory is bit-identical to the legacy per-sample loop.
	BatchSize int
}

// DefaultTrainConfig returns the settings used by the benchmark harness.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{Epochs: 40, LR: 1e-3, WeightDecay: 1e-4, ScorerReg: 1e-6}
}

// Fit trains the autoencoder on normal weeks (each a slice of inputDim
// standardised readings), then fits the logPD scorer and threshold on the
// training reconstruction errors. It returns the final mean training loss.
//
// Training runs through the batched tensor engine: cfg.BatchSize samples
// are stacked into a matrix, pushed through one matrix-matrix forward and
// backward pass, and applied as one batch-averaged optimiser step. The
// default batch size of 1 reproduces the paper's per-sample stochastic
// updates bit for bit (the batch kernels accumulate in per-sample order);
// larger batches trade update count for a multi-x throughput win.
func (m *Model) Fit(train [][]float64, cfg TrainConfig, rng *rand.Rand) (float64, error) {
	if len(train) == 0 {
		return 0, fmt.Errorf("autoencoder: empty training set")
	}
	if cfg.Epochs <= 0 {
		return 0, fmt.Errorf("autoencoder: epochs must be positive")
	}
	bs := cfg.BatchSize
	if bs < 1 {
		bs = 1
	}
	for i, x := range train {
		if len(x) != m.inputDim {
			return 0, fmt.Errorf("%w: training week %d has %d readings, want %d", mat.ErrShape, i, len(x), m.inputDim)
		}
	}
	// Adam converges markedly faster than RMSProp on the deeper AE stacks
	// at these widths; the paper's AE training details live in its ref [3],
	// so the optimiser choice is ours to make.
	opt := nn.NewAdam(cfg.LR)
	opt.WeightDecay = cfg.WeightDecay
	opt.ClipNorm = 5

	order := make([]int, len(train))
	for i := range order {
		order[i] = i
	}
	var (
		last float64
		xb   = new(mat.Matrix)
		grad = new(mat.Matrix)
	)
	for e := 0; e < cfg.Epochs; e++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		var total float64
		for start := 0; start < len(order); start += bs {
			end := start + bs
			if end > len(order) {
				end = len(order)
			}
			batch := order[start:end]
			xb.Reshape(len(batch), m.inputDim)
			for k, idx := range batch {
				copy(xb.Data[k*m.inputDim:(k+1)*m.inputDim], train[idx])
			}
			out, err := m.Net.ForwardBatch(xb, true)
			if err != nil {
				return 0, fmt.Errorf("training %s: %w", m.ModelName, err)
			}
			loss, err := nn.MSELossBatch(out, xb, grad)
			if err != nil {
				return 0, err
			}
			if _, err := m.Net.BackwardBatch(grad); err != nil {
				return 0, err
			}
			if err := opt.Step(m.Net.Params()); err != nil {
				return 0, err
			}
			total += loss * float64(len(batch))
		}
		last = total / float64(len(train))
	}

	// Fit the scorer on per-point reconstruction errors of the training set,
	// reconstructing through the vectorised inference path in fitBatch-sized
	// chunks (point order matches the sequential loop exactly).
	const fitBatch = 32
	errs := make([][]float64, 0, len(train)*m.inputDim)
	var ws nn.BatchScratch
	for start := 0; start < len(train); start += fitBatch {
		end := start + fitBatch
		if end > len(train) {
			end = len(train)
		}
		xb.Reshape(end-start, m.inputDim)
		for k, x := range train[start:end] {
			copy(xb.Data[k*m.inputDim:(k+1)*m.inputDim], x)
		}
		rec, err := m.Net.InferBatch(&ws, xb)
		if err != nil {
			return 0, err
		}
		for k := 0; k < xb.Rows; k++ {
			rrow, xrow := rec.Row(k), xb.Row(k)
			for i := range xrow {
				errs = append(errs, []float64{rrow[i] - xrow[i]})
			}
		}
	}
	scorer, err := anomaly.FitScorer(errs, cfg.ScorerReg)
	if err != nil {
		return 0, fmt.Errorf("fitting scorer for %s: %w", m.ModelName, err)
	}
	m.Scorer = scorer
	return last, nil
}

// pointErrors reconstructs x and returns the per-point scalar error
// vectors ([e_i] per reading).
func (m *Model) pointErrors(x []float64) ([][]float64, error) {
	rec, err := m.Net.Forward(x, false)
	if err != nil {
		return nil, err
	}
	out := make([][]float64, len(x))
	for i := range x {
		out[i] = []float64{rec[i] - x[i]}
	}
	return out, nil
}

// Name implements anomaly.Detector.
func (m *Model) Name() string { return m.ModelName }

// Detect implements anomaly.Detector for frames of width 1 (univariate).
func (m *Model) Detect(frames [][]float64) (anomaly.Verdict, error) {
	if m.Scorer == nil {
		return anomaly.Verdict{}, fmt.Errorf("autoencoder: %s not fitted", m.ModelName)
	}
	if len(frames) != m.inputDim {
		return anomaly.Verdict{}, fmt.Errorf("autoencoder: %s expects %d frames, got %d", m.ModelName, m.inputDim, len(frames))
	}
	x := make([]float64, len(frames))
	for i, f := range frames {
		if len(f) != 1 {
			return anomaly.Verdict{}, fmt.Errorf("autoencoder: univariate frame has %d dims", len(f))
		}
		x[i] = f[0]
	}
	errs, err := m.pointErrors(x)
	if err != nil {
		return anomaly.Verdict{}, err
	}
	scores, err := m.Scorer.ScoreAll(errs)
	if err != nil {
		return anomaly.Verdict{}, err
	}
	return m.Scorer.Judge(scores, m.Conf), nil
}

// detectScratch is the per-call workspace of DetectBatch, leased from a
// pool so concurrent batch detections stay allocation-free in steady state
// without sharing any mutable state.
type detectScratch struct {
	xb mat.Matrix
	ws nn.BatchScratch
}

var detectScratchPool = sync.Pool{New: func() any { return new(detectScratch) }}

// DetectBatch implements anomaly.BatchDetector: it judges every window in
// one vectorised pass — all windows reconstructed through one batched
// forward, all B·T point errors scored through one matrix scoring call.
// Verdicts are bit-identical to per-window Detect calls; like Detect it is
// safe for concurrent use (each call leases its own scratch).
func (m *Model) DetectBatch(windows [][][]float64) ([]anomaly.Verdict, error) {
	if m.Scorer == nil {
		return nil, fmt.Errorf("autoencoder: %s not fitted", m.ModelName)
	}
	if len(windows) == 0 {
		return nil, nil
	}
	scratch := detectScratchPool.Get().(*detectScratch)
	defer detectScratchPool.Put(scratch)
	xb := scratch.xb.Reshape(len(windows), m.inputDim)
	for w, frames := range windows {
		if len(frames) != m.inputDim {
			return nil, fmt.Errorf("autoencoder: %s expects %d frames, got %d (window %d)", m.ModelName, m.inputDim, len(frames), w)
		}
		row := xb.Row(w)
		for i, f := range frames {
			if len(f) != 1 {
				return nil, fmt.Errorf("autoencoder: univariate frame has %d dims (window %d)", len(f), w)
			}
			row[i] = f[0]
		}
	}
	rec, err := m.Net.InferBatch(&scratch.ws, xb)
	if err != nil {
		return nil, err
	}
	// Point errors overwrite the input batch in place (it is no longer
	// needed), viewed as (B·T)×1 for one scoring pass.
	for i, v := range rec.Data {
		xb.Data[i] = v - xb.Data[i]
	}
	pointErrs := &mat.Matrix{Rows: len(xb.Data), Cols: 1, Data: xb.Data}
	scores, err := m.Scorer.ScoreMatrix(pointErrs)
	if err != nil {
		return nil, err
	}
	out := make([]anomaly.Verdict, len(windows))
	for w := range out {
		out[w] = m.Scorer.Judge(scores[w*m.inputDim:(w+1)*m.inputDim], m.Conf)
	}
	return out, nil
}

// NumParams implements anomaly.Detector.
func (m *Model) NumParams() int { return m.Net.NumParams() }

// InputDim returns the window width the model was built for — needed to
// rebuild an identical architecture when restoring shipped weights.
func (m *Model) InputDim() int { return m.inputDim }

// FlopsPerWindow implements anomaly.Detector; for an autoencoder the
// window length is fixed by the input width, so T is ignored.
func (m *Model) FlopsPerWindow(int) int64 { return m.Net.FlopsDense() }

// Quantize applies FP16 compression to the model weights, reproducing the
// paper's deployment step for IoT- and edge-hosted models. Returns the
// worst-case rounding error.
func (m *Model) Quantize() float64 { return m.QuantizeMode(nn.QuantFP16) }

// QuantizeMode compresses the model weights at the given precision tier
// (fp16 or int8) and switches inference onto the matching quantized packed
// kernels. Returns the worst-case rounding error introduced.
func (m *Model) QuantizeMode(mode nn.QuantMode) float64 {
	return nn.QuantizeParams(m.Net.Params(), mode)
}
