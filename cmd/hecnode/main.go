// Command hecnode runs one HEC layer's detection service over TCP, the
// building block of a live distributed deployment: start an edge node and a
// cloud node, then point examples/cluster (or your own client) at them.
//
// A node obtains its detector one of three ways:
//
//   - train it locally at startup (the default; use the same -seed across
//     nodes so every node trains on identical data),
//   - load a previously saved artifact with -load, or
//   - fetch the weights from a running peer with -fetch (the model-shipping
//     RPC) — so a fleet trains exactly once.
//
// Every node serves its own model snapshot to peers, and -save writes the
// artifact to disk for later -load runs. A -fetch node can additionally
// -watch the peer: it polls the peer's model version (a cheap
// content-address probe) and, whenever the peer rolls to a new model,
// pulls the changed tensors as a delta update and hot-swaps its serving
// detector with zero restarts and zero dropped requests.
//
// Usage:
//
//	hecnode -layer edge -data univariate -addr 127.0.0.1:7101 -save edge.model
//	hecnode -layer edge -addr 127.0.0.1:7201 -load edge.model
//	hecnode -layer edge -addr 127.0.0.1:7301 -fetch 127.0.0.1:7101
//	hecnode -layer edge -addr 127.0.0.1:7401 -fetch 127.0.0.1:7101 -watch 5s
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"repro/internal/anomaly"
	"repro/internal/autoencoder"
	"repro/internal/cluster"
	"repro/internal/dataset"
	"repro/internal/hec"
	"repro/internal/sched"
	"repro/internal/seq2seq"
	"repro/internal/transport"
)

func main() {
	var (
		layer  = flag.String("layer", "edge", "layer this node plays: iot | edge | cloud")
		data   = flag.String("data", "univariate", "dataset: univariate | multivariate")
		addr   = flag.String("addr", "127.0.0.1:0", "listen address")
		seed   = flag.Int64("seed", 1, "training seed (use the same across nodes)")
		save   = flag.String("save", "", "write the trained model artifact to this file")
		load   = flag.String("load", "", "load the model artifact from this file instead of training")
		fetch  = flag.String("fetch", "", "fetch the model from a running peer node instead of training")
		watch  = flag.Duration("watch", 0, "with -fetch: poll the peer at this interval and hot-swap refreshed models (delta updates, zero restarts); 0 disables")
		drain  = flag.Duration("drain", 10*time.Second, "graceful-shutdown budget: finish in-flight requests for up to this long on SIGTERM")
		orphan = flag.Bool("exit-with-parent", false, "drain and exit when the spawning process dies (for autoscaler-spawned replicas)")

		schedPolicy = flag.String("sched", "", "enable the server-side request scheduler with this queue policy: fifo | edf | slo | reverse-edf (empty = no scheduler, requests run as they arrive)")
		schedLimit  = flag.Int("sched-limit", 0, "scheduler concurrency limit (0 = GOMAXPROCS); only with -sched")
		schedQueue  = flag.Int("sched-queue", 64, "scheduler queue capacity beyond the concurrency limit; excess requests get a busy response; only with -sched")
	)
	flag.Parse()
	if err := run(*layer, *data, *addr, *seed, *save, *load, *fetch, *watch, *drain, *orphan, *schedPolicy, *schedLimit, *schedQueue); err != nil {
		fmt.Fprintln(os.Stderr, "hecnode:", err)
		os.Exit(1)
	}
}

func run(layerName, data, addr string, seed int64, save, load, fetch string, watch, drain time.Duration, orphan bool, schedPolicy string, schedLimit, schedQueue int) error {
	l, err := parseLayer(layerName)
	if err != nil {
		return err
	}
	if load != "" && fetch != "" {
		return fmt.Errorf("-load and -fetch are mutually exclusive")
	}
	if watch < 0 {
		return fmt.Errorf("-watch must be ≥ 0")
	}
	if watch > 0 && fetch == "" {
		return fmt.Errorf("-watch needs -fetch: there is no peer to watch")
	}
	var schedCfg *sched.Config
	if schedPolicy != "" {
		pol, err := sched.ParsePolicy(schedPolicy)
		if err != nil {
			return err
		}
		if schedLimit <= 0 {
			schedLimit = runtime.GOMAXPROCS(0)
		}
		schedCfg = &sched.Config{MaxConcurrent: schedLimit, MaxQueue: schedQueue, Policy: pol}
	}

	var (
		det       anomaly.Detector
		recurrent bool
		snap      *transport.ModelSnapshot
	)
	switch {
	case load != "":
		snap, err = cluster.LoadModel(load)
		if err != nil {
			return err
		}
		det, recurrent, err = cluster.RestoreDetector(snap)
		if err != nil {
			return err
		}
		fmt.Printf("loaded %s/%s model from %s (no training)\n", snap.Kind, snap.Tier, load)
	case fetch != "":
		cli, err := transport.Dial(fetch, 0)
		if err != nil {
			return err
		}
		// Bound the fetch so a wedged peer cannot hang node startup; the
		// multi-megabyte cloud snapshot transfers on loopback or LAN well
		// inside this budget.
		fetchCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		snap, err = cli.FetchModelContext(fetchCtx)
		cancel()
		cli.Close()
		if err != nil {
			return fmt.Errorf("fetching model from %s: %w", fetch, err)
		}
		det, recurrent, err = cluster.RestoreDetector(snap)
		if err != nil {
			return err
		}
		fmt.Printf("fetched %s/%s model from peer %s (no training)\n", snap.Kind, snap.Tier, fetch)
	default:
		fmt.Printf("training %s model for layer %v...\n", data, l)
		det, recurrent, err = trainDetector(l, data, seed)
		if err != nil {
			return err
		}
		snap, err = cluster.SnapshotDetector(det, l.String(), l != hec.LayerCloud)
		if err != nil {
			return err
		}
	}
	if snap.Tier != l.String() {
		fmt.Printf("note: serving a %s-tier model at layer %v\n", snap.Tier, l)
	}
	if save != "" {
		if err := cluster.SaveModel(save, snap); err != nil {
			return err
		}
		fmt.Printf("saved model artifact to %s\n", save)
	}

	execMs, err := hec.DefaultTopology().ExecTimeFunc(l, det, recurrent)
	if err != nil {
		return err
	}

	srv, err := serveDetector(addr, det, transport.ServerOptions{ExecMs: execMs, Model: snap, Sched: schedCfg})
	if err != nil {
		return err
	}
	defer srv.Close()
	if schedCfg != nil {
		fmt.Printf("hecnode: %s (%s) serving on %s [sched %s, limit %d, queue %d]\n",
			det.Name(), l, srv.Addr(), schedCfg.Policy.Name(), schedCfg.MaxConcurrent, schedCfg.MaxQueue)
	} else {
		fmt.Printf("hecnode: %s (%s) serving on %s\n", det.Name(), l, srv.Addr())
	}

	if watch > 0 {
		watchDone := make(chan struct{})
		defer close(watchDone)
		go watchPeer(watchDone, fetch, l, srv, snap, watch)
		fmt.Printf("hecnode: watching %s every %v for model updates\n", fetch, watch)
	}

	// Graceful drain, so rolling this replica does not surface spurious
	// remote errors to clients: the first signal stops accepting and lets
	// in-flight requests finish (their responses still reach the wire, and
	// clients' routing layers fail the *next* request over to a healthy
	// replica); a second signal — or the -drain budget expiring — forces an
	// immediate close.
	stop := make(chan os.Signal, 2)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	if orphan {
		// Autoscaler-spawned replicas must not outlive their control plane:
		// when the spawning process dies (our PPID changes — the node is
		// reparented to init/subreaper), enter the same graceful drain a
		// SIGTERM would trigger.
		ppid := os.Getppid()
		go func() {
			for os.Getppid() == ppid {
				time.Sleep(500 * time.Millisecond)
			}
			stop <- syscall.SIGTERM
		}()
	}
	<-stop
	fmt.Printf("hecnode: draining (finishing in-flight requests, budget %v; signal again to force)\n", drain)
	ctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	go func() {
		<-stop
		cancel()
	}()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Printf("hecnode: drain cut short (%v); closing\n", err)
		return nil
	}
	fmt.Println("hecnode: drained cleanly")
	return nil
}

// watchPeer is the poll-and-swap loop behind -watch: every interval it
// probes the peer's model version, and only when the version changed does
// it pull the update — a delta of the changed tensors when possible — and
// hot-swap the serving detector through Server.UpdateModel. In-flight
// requests finish on the old model; nothing restarts. A dead peer or a
// failed refresh costs one log line and the next tick retries (the client
// redials if its connection broke).
func watchPeer(done <-chan struct{}, peer string, l hec.Layer, srv *transport.Server, base *transport.ModelSnapshot, every time.Duration) {
	var cli *transport.Client
	defer func() {
		if cli != nil {
			cli.Close()
		}
	}()
	ticker := time.NewTicker(every)
	defer ticker.Stop()
	for {
		select {
		case <-done:
			return
		case <-ticker.C:
		}
		if cli != nil && cli.Broken() {
			cli.Close()
			cli = nil
		}
		if cli == nil {
			c, err := transport.Dial(peer, 0)
			if err != nil {
				fmt.Printf("hecnode: watch: peer %s unreachable (%v); will retry\n", peer, err)
				continue
			}
			cli = c
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		snap, upToDate, err := cli.RefreshModelContext(ctx, base)
		cancel()
		if err != nil {
			fmt.Printf("hecnode: watch: refresh from %s: %v\n", peer, err)
			continue
		}
		if upToDate {
			continue
		}
		det, recurrent, err := cluster.RestoreDetector(snap)
		if err != nil {
			fmt.Printf("hecnode: watch: refreshed model unusable: %v\n", err)
			continue
		}
		execMs, err := hec.DefaultTopology().ExecTimeFunc(l, det, recurrent)
		if err != nil {
			fmt.Printf("hecnode: watch: no exec-time model for refreshed detector: %v\n", err)
			continue
		}
		if err := srv.UpdateModel(det, execMs, snap); err != nil {
			fmt.Printf("hecnode: watch: hot-swap refused: %v\n", err)
			continue
		}
		base = snap
		fmt.Printf("hecnode: watch: hot-swapped to model version %.8s from %s (zero restarts)\n",
			srv.ModelVersion(), peer)
	}
}

func parseLayer(s string) (hec.Layer, error) {
	switch strings.ToLower(s) {
	case "iot":
		return hec.LayerIoT, nil
	case "edge":
		return hec.LayerEdge, nil
	case "cloud":
		return hec.LayerCloud, nil
	default:
		return 0, fmt.Errorf("unknown -layer %q", s)
	}
}

// trainDetector builds and fits the model that belongs at layer l for the
// chosen dataset, using the shared seed so every node trains on identical
// data.
func trainDetector(l hec.Layer, data string, seed int64) (anomaly.Detector, bool, error) {
	tier := [hec.NumLayers]autoencoder.Tier{
		autoencoder.TierIoT, autoencoder.TierEdge, autoencoder.TierCloud,
	}[l]
	switch strings.ToLower(data) {
	case "univariate", "uni":
		cfg := dataset.DefaultPowerConfig()
		cfg.TrainWeeks = 40
		cfg.Seed = seed
		ds, err := dataset.GeneratePower(cfg)
		if err != nil {
			return nil, false, err
		}
		train := make([][]float64, len(ds.Train))
		for i, s := range ds.Train {
			train[i] = s.Values
		}
		rng := rand.New(rand.NewSource(seed + int64(l)))
		m, err := autoencoder.New(tier, dataset.ReadingsPerWeek, rng)
		if err != nil {
			return nil, false, err
		}
		tc := autoencoder.DefaultTrainConfig()
		tc.Epochs = 25
		if _, err := m.Fit(train, tc, rng); err != nil {
			return nil, false, err
		}
		if l != hec.LayerCloud {
			m.Quantize()
		}
		return m, false, nil
	case "multivariate", "multi":
		cfg := dataset.DefaultMHealthConfig()
		cfg.Subjects = 3
		cfg.WalkSeconds = 40
		cfg.Seed = seed
		ds, err := dataset.GenerateMHealth(cfg)
		if err != nil {
			return nil, false, err
		}
		train := make([][][]float64, 0, 60)
		for i, s := range ds.Train {
			if i >= 60 {
				break
			}
			train = append(train, s.Frames)
		}
		rng := rand.New(rand.NewSource(seed + int64(l)))
		m, err := seq2seq.New(tier, seq2seq.DefaultSizing(), rng)
		if err != nil {
			return nil, false, err
		}
		tc := seq2seq.DefaultTrainConfig()
		tc.Epochs = 3
		if _, err := m.Fit(train, tc, rng); err != nil {
			return nil, false, err
		}
		if l != hec.LayerCloud {
			m.Quantize()
		}
		return m, true, nil
	default:
		return nil, false, fmt.Errorf("unknown -data %q", data)
	}
}
