// Command hecnode runs one HEC layer's detection service over TCP, the
// building block of a live distributed deployment: start an edge node and a
// cloud node, then point examples/cluster (or your own client) at them.
//
// A node obtains its detector one of three ways:
//
//   - train it locally at startup (the default; use the same -seed across
//     nodes so every node trains on identical data),
//   - load a previously saved artifact with -load, or
//   - fetch the weights from a running peer with -fetch (the model-shipping
//     RPC) — so a fleet trains exactly once.
//
// Every node serves its own model snapshot to peers, and -save writes the
// artifact to disk for later -load runs.
//
// Usage:
//
//	hecnode -layer edge -data univariate -addr 127.0.0.1:7101 -save edge.model
//	hecnode -layer edge -addr 127.0.0.1:7201 -load edge.model
//	hecnode -layer edge -addr 127.0.0.1:7301 -fetch 127.0.0.1:7101
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"repro/internal/anomaly"
	"repro/internal/autoencoder"
	"repro/internal/cluster"
	"repro/internal/dataset"
	"repro/internal/hec"
	"repro/internal/sched"
	"repro/internal/seq2seq"
	"repro/internal/transport"
)

func main() {
	var (
		layer  = flag.String("layer", "edge", "layer this node plays: iot | edge | cloud")
		data   = flag.String("data", "univariate", "dataset: univariate | multivariate")
		addr   = flag.String("addr", "127.0.0.1:0", "listen address")
		seed   = flag.Int64("seed", 1, "training seed (use the same across nodes)")
		save   = flag.String("save", "", "write the trained model artifact to this file")
		load   = flag.String("load", "", "load the model artifact from this file instead of training")
		fetch  = flag.String("fetch", "", "fetch the model from a running peer node instead of training")
		drain  = flag.Duration("drain", 10*time.Second, "graceful-shutdown budget: finish in-flight requests for up to this long on SIGTERM")
		orphan = flag.Bool("exit-with-parent", false, "drain and exit when the spawning process dies (for autoscaler-spawned replicas)")

		schedPolicy = flag.String("sched", "", "enable the server-side request scheduler with this queue policy: fifo | edf | slo | reverse-edf (empty = no scheduler, requests run as they arrive)")
		schedLimit  = flag.Int("sched-limit", 0, "scheduler concurrency limit (0 = GOMAXPROCS); only with -sched")
		schedQueue  = flag.Int("sched-queue", 64, "scheduler queue capacity beyond the concurrency limit; excess requests get a busy response; only with -sched")
	)
	flag.Parse()
	if err := run(*layer, *data, *addr, *seed, *save, *load, *fetch, *drain, *orphan, *schedPolicy, *schedLimit, *schedQueue); err != nil {
		fmt.Fprintln(os.Stderr, "hecnode:", err)
		os.Exit(1)
	}
}

func run(layerName, data, addr string, seed int64, save, load, fetch string, drain time.Duration, orphan bool, schedPolicy string, schedLimit, schedQueue int) error {
	l, err := parseLayer(layerName)
	if err != nil {
		return err
	}
	if load != "" && fetch != "" {
		return fmt.Errorf("-load and -fetch are mutually exclusive")
	}
	var schedCfg *sched.Config
	if schedPolicy != "" {
		pol, err := sched.ParsePolicy(schedPolicy)
		if err != nil {
			return err
		}
		if schedLimit <= 0 {
			schedLimit = runtime.GOMAXPROCS(0)
		}
		schedCfg = &sched.Config{MaxConcurrent: schedLimit, MaxQueue: schedQueue, Policy: pol}
	}

	var (
		det       anomaly.Detector
		recurrent bool
		snap      *transport.ModelSnapshot
	)
	switch {
	case load != "":
		snap, err = cluster.LoadModel(load)
		if err != nil {
			return err
		}
		det, recurrent, err = cluster.RestoreDetector(snap)
		if err != nil {
			return err
		}
		fmt.Printf("loaded %s/%s model from %s (no training)\n", snap.Kind, snap.Tier, load)
	case fetch != "":
		cli, err := transport.Dial(fetch, 0)
		if err != nil {
			return err
		}
		// Bound the fetch so a wedged peer cannot hang node startup; the
		// multi-megabyte cloud snapshot transfers on loopback or LAN well
		// inside this budget.
		fetchCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		snap, err = cli.FetchModelContext(fetchCtx)
		cancel()
		cli.Close()
		if err != nil {
			return fmt.Errorf("fetching model from %s: %w", fetch, err)
		}
		det, recurrent, err = cluster.RestoreDetector(snap)
		if err != nil {
			return err
		}
		fmt.Printf("fetched %s/%s model from peer %s (no training)\n", snap.Kind, snap.Tier, fetch)
	default:
		fmt.Printf("training %s model for layer %v...\n", data, l)
		det, recurrent, err = trainDetector(l, data, seed)
		if err != nil {
			return err
		}
		snap, err = cluster.SnapshotDetector(det, l.String(), l != hec.LayerCloud)
		if err != nil {
			return err
		}
	}
	if snap.Tier != l.String() {
		fmt.Printf("note: serving a %s-tier model at layer %v\n", snap.Tier, l)
	}
	if save != "" {
		if err := cluster.SaveModel(save, snap); err != nil {
			return err
		}
		fmt.Printf("saved model artifact to %s\n", save)
	}

	execMs, err := hec.DefaultTopology().ExecTimeFunc(l, det, recurrent)
	if err != nil {
		return err
	}

	srv, err := serveDetector(addr, det, transport.ServerOptions{ExecMs: execMs, Model: snap, Sched: schedCfg})
	if err != nil {
		return err
	}
	defer srv.Close()
	if schedCfg != nil {
		fmt.Printf("hecnode: %s (%s) serving on %s [sched %s, limit %d, queue %d]\n",
			det.Name(), l, srv.Addr(), schedCfg.Policy.Name(), schedCfg.MaxConcurrent, schedCfg.MaxQueue)
	} else {
		fmt.Printf("hecnode: %s (%s) serving on %s\n", det.Name(), l, srv.Addr())
	}

	// Graceful drain, so rolling this replica does not surface spurious
	// remote errors to clients: the first signal stops accepting and lets
	// in-flight requests finish (their responses still reach the wire, and
	// clients' routing layers fail the *next* request over to a healthy
	// replica); a second signal — or the -drain budget expiring — forces an
	// immediate close.
	stop := make(chan os.Signal, 2)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	if orphan {
		// Autoscaler-spawned replicas must not outlive their control plane:
		// when the spawning process dies (our PPID changes — the node is
		// reparented to init/subreaper), enter the same graceful drain a
		// SIGTERM would trigger.
		ppid := os.Getppid()
		go func() {
			for os.Getppid() == ppid {
				time.Sleep(500 * time.Millisecond)
			}
			stop <- syscall.SIGTERM
		}()
	}
	<-stop
	fmt.Printf("hecnode: draining (finishing in-flight requests, budget %v; signal again to force)\n", drain)
	ctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	go func() {
		<-stop
		cancel()
	}()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Printf("hecnode: drain cut short (%v); closing\n", err)
		return nil
	}
	fmt.Println("hecnode: drained cleanly")
	return nil
}

func parseLayer(s string) (hec.Layer, error) {
	switch strings.ToLower(s) {
	case "iot":
		return hec.LayerIoT, nil
	case "edge":
		return hec.LayerEdge, nil
	case "cloud":
		return hec.LayerCloud, nil
	default:
		return 0, fmt.Errorf("unknown -layer %q", s)
	}
}

// trainDetector builds and fits the model that belongs at layer l for the
// chosen dataset, using the shared seed so every node trains on identical
// data.
func trainDetector(l hec.Layer, data string, seed int64) (anomaly.Detector, bool, error) {
	tier := [hec.NumLayers]autoencoder.Tier{
		autoencoder.TierIoT, autoencoder.TierEdge, autoencoder.TierCloud,
	}[l]
	switch strings.ToLower(data) {
	case "univariate", "uni":
		cfg := dataset.DefaultPowerConfig()
		cfg.TrainWeeks = 40
		cfg.Seed = seed
		ds, err := dataset.GeneratePower(cfg)
		if err != nil {
			return nil, false, err
		}
		train := make([][]float64, len(ds.Train))
		for i, s := range ds.Train {
			train[i] = s.Values
		}
		rng := rand.New(rand.NewSource(seed + int64(l)))
		m, err := autoencoder.New(tier, dataset.ReadingsPerWeek, rng)
		if err != nil {
			return nil, false, err
		}
		tc := autoencoder.DefaultTrainConfig()
		tc.Epochs = 25
		if _, err := m.Fit(train, tc, rng); err != nil {
			return nil, false, err
		}
		if l != hec.LayerCloud {
			m.Quantize()
		}
		return m, false, nil
	case "multivariate", "multi":
		cfg := dataset.DefaultMHealthConfig()
		cfg.Subjects = 3
		cfg.WalkSeconds = 40
		cfg.Seed = seed
		ds, err := dataset.GenerateMHealth(cfg)
		if err != nil {
			return nil, false, err
		}
		train := make([][][]float64, 0, 60)
		for i, s := range ds.Train {
			if i >= 60 {
				break
			}
			train = append(train, s.Frames)
		}
		rng := rand.New(rand.NewSource(seed + int64(l)))
		m, err := seq2seq.New(tier, seq2seq.DefaultSizing(), rng)
		if err != nil {
			return nil, false, err
		}
		tc := seq2seq.DefaultTrainConfig()
		tc.Epochs = 3
		if _, err := m.Fit(train, tc, rng); err != nil {
			return nil, false, err
		}
		if l != hec.LayerCloud {
			m.Quantize()
		}
		return m, true, nil
	default:
		return nil, false, fmt.Errorf("unknown -data %q", data)
	}
}
