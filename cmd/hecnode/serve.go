package main

import (
	"repro/internal/anomaly"
	"repro/internal/transport"
)

// serveDetector wraps transport.Serve; split out so main stays readable and
// the wiring is unit-testable.
func serveDetector(addr string, det anomaly.Detector, execMs func(int) float64) (*transport.Server, error) {
	return transport.Serve(addr, det, execMs)
}
