package main

import (
	"repro/internal/anomaly"
	"repro/internal/transport"
)

// serveDetector wraps transport.ServeWith; split out so main stays readable
// and the wiring is unit-testable.
func serveDetector(addr string, det anomaly.Detector, opt transport.ServerOptions) (*transport.Server, error) {
	return transport.ServeWith(addr, det, opt)
}
