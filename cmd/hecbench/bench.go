package main

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"time"

	"repro/internal/anomaly"
	"repro/internal/autoencoder"
	"repro/internal/cluster"
	"repro/internal/hec"
	"repro/internal/rnn"
	"repro/internal/routing"
	"repro/internal/transport"
	"repro/internal/workload"
)

// The -bench-json mode: a machine-readable perf snapshot of the batched
// tensor engine against the per-sample baseline, emitted as JSON so the
// repository's perf trajectory (BENCH_N.json files) can be populated and
// diffed by tooling instead of eyeballed from test logs.

// benchSchema identifies the snapshot layout for downstream tooling.
const benchSchema = "hec-bench/1"

// BenchResult is one baseline-vs-variant measurement. The classic results
// compare per-sample ("sequential") against batched execution; the
// serving-plane results reuse the same two slots with explicit Baseline /
// Variant labels (gob vs binary codec, always-busiest vs least-in-flight
// routing).
type BenchResult struct {
	// Name identifies the workload (e.g. "autoencoder-train-epoch").
	Name string `json:"name"`
	// Detail describes the workload's shape (model, data sizes).
	Detail string `json:"detail"`
	// BatchSize is the batch the vectorised variant ran with.
	BatchSize int `json:"batch_size"`
	// Baseline / Variant name the two configurations when the pair is not
	// sequential-vs-batched; empty for the classic results.
	Baseline string `json:"baseline,omitempty"`
	Variant  string `json:"variant,omitempty"`
	// SequentialMs / BatchedMs are best-of-reps wall-clock times of the
	// baseline and the variant respectively.
	SequentialMs float64 `json:"sequential_ms"`
	BatchedMs    float64 `json:"batched_ms"`
	// Speedup is SequentialMs / BatchedMs.
	Speedup float64 `json:"speedup"`
}

// BenchSnapshot is the file layout of -bench-json.
type BenchSnapshot struct {
	Schema     string        `json:"schema"`
	GoVersion  string        `json:"go_version"`
	GoMaxProcs int           `json:"gomaxprocs"`
	Reps       int           `json:"reps"`
	Results    []BenchResult `json:"results"`
}

// timeIt returns the best-of-reps wall-clock milliseconds of fn.
func timeIt(reps int, fn func() error) (float64, error) {
	best := math.Inf(1)
	for r := 0; r < reps; r++ {
		start := time.Now()
		if err := fn(); err != nil {
			return 0, err
		}
		if ms := float64(time.Since(start)) / float64(time.Millisecond); ms < best {
			best = ms
		}
	}
	return best, nil
}

// benchWeeks synthesises smooth normal weeks for throughput measurement
// (detection quality is irrelevant here; the arithmetic is identical).
func benchWeeks(n, dim int, rng *rand.Rand) [][]float64 {
	out := make([][]float64, n)
	for w := range out {
		week := make([]float64, dim)
		phase := rng.Float64() * 2 * math.Pi
		for i := range week {
			week[i] = math.Sin(2*math.Pi*float64(i)/float64(dim)+phase) + 0.05*rng.NormFloat64()
		}
		out[w] = week
	}
	return out
}

// benchTrain measures one AE-Cloud training epoch, per-sample vs batched.
func benchTrain(reps, weeks, batch int) (BenchResult, error) {
	const dim = 672
	data := benchWeeks(weeks, dim, rand.New(rand.NewSource(11)))
	run := func(bs int) func() error {
		return func() error {
			m, err := autoencoder.New(autoencoder.TierCloud, dim, rand.New(rand.NewSource(12)))
			if err != nil {
				return err
			}
			cfg := autoencoder.DefaultTrainConfig()
			cfg.Epochs = 1
			cfg.BatchSize = bs
			_, err = m.Fit(data, cfg, rand.New(rand.NewSource(13)))
			return err
		}
	}
	seq, err := timeIt(reps, run(1))
	if err != nil {
		return BenchResult{}, err
	}
	bat, err := timeIt(reps, run(batch))
	if err != nil {
		return BenchResult{}, err
	}
	return BenchResult{
		Name:         "autoencoder-train-epoch",
		Detail:       fmt.Sprintf("AE-Cloud %d-wide, %d weeks, 1 epoch (incl. scorer fit)", dim, weeks),
		BatchSize:    batch,
		SequentialMs: seq,
		BatchedMs:    bat,
		Speedup:      seq / bat,
	}, nil
}

// benchPrecompute measures hec.Precompute over a trained three-tier
// deployment, per-sample vs batched detection, both on one worker so the
// ratio isolates vectorisation from parallelism.
func benchPrecompute(reps, samples, batch int) (BenchResult, error) {
	const dim = 672
	rng := rand.New(rand.NewSource(21))
	train := benchWeeks(24, dim, rng)
	cfg := autoencoder.DefaultTrainConfig()
	cfg.Epochs = 2 // throughput benchmark; detection quality is irrelevant
	cfg.BatchSize = 32
	var dets [hec.NumLayers]anomaly.Detector
	for l, tier := range []autoencoder.Tier{autoencoder.TierIoT, autoencoder.TierEdge, autoencoder.TierCloud} {
		m, err := autoencoder.New(tier, dim, rng)
		if err != nil {
			return BenchResult{}, err
		}
		if _, err := m.Fit(train, cfg, rng); err != nil {
			return BenchResult{}, err
		}
		dets[l] = m
	}
	dep, err := hec.NewDeployment(hec.DefaultTopology(), dets, false)
	if err != nil {
		return BenchResult{}, err
	}
	set := make([]hec.Sample, samples)
	for i := range set {
		week := train[i%len(train)]
		frames := make([][]float64, dim)
		for j, v := range week {
			frames[j] = []float64{v}
		}
		set[i] = hec.Sample{Frames: frames, Label: false}
	}
	run := func(bs int) func() error {
		return func() error {
			_, err := hec.PrecomputeWith(context.Background(), dep, nil, set, hec.PrecomputeOptions{Workers: 1, BatchSize: bs})
			return err
		}
	}
	seq, err := timeIt(reps, run(1))
	if err != nil {
		return BenchResult{}, err
	}
	bat, err := timeIt(reps, run(batch))
	if err != nil {
		return BenchResult{}, err
	}
	return BenchResult{
		Name:         "hec-precompute",
		Detail:       fmt.Sprintf("3 AE tiers × %d weekly samples, 1 worker", samples),
		BatchSize:    batch,
		SequentialMs: seq,
		BatchedMs:    bat,
		Speedup:      seq / bat,
	}, nil
}

// benchReconstruct measures the multivariate engine: batched lockstep LSTM
// reconstruction vs per-window autoregression.
func benchReconstruct(reps, windows int) (BenchResult, error) {
	const (
		T = 128
		D = 18
	)
	rng := rand.New(rand.NewSource(31))
	m, err := rnn.NewSeq2Seq(rnn.Config{InSize: D, HiddenSize: 16}, rng)
	if err != nil {
		return BenchResult{}, err
	}
	batch := make([][][]float64, windows)
	for w := range batch {
		batch[w] = make([][]float64, T)
		for t := range batch[w] {
			f := make([]float64, D)
			for j := range f {
				f[j] = rng.NormFloat64()
			}
			batch[w][t] = f
		}
	}
	seq, err := timeIt(reps, func() error {
		for _, w := range batch {
			if _, err := m.Reconstruct(w); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return BenchResult{}, err
	}
	bat, err := timeIt(reps, func() error {
		_, err := m.ReconstructBatch(batch)
		return err
	})
	if err != nil {
		return BenchResult{}, err
	}
	return BenchResult{
		Name:         "seq2seq-reconstruct",
		Detail:       fmt.Sprintf("LSTM-seq2seq-IoT, %d windows of %d×%d", windows, T, D),
		BatchSize:    windows,
		SequentialMs: seq,
		BatchedMs:    bat,
		Speedup:      seq / bat,
	}, nil
}

// benchCodec measures the OpDetectBatch encode+decode cycle — request and
// response, both directions — under gob and under the binary codec, on the
// canonical transport.BenchBatch workload (the same bytes the package's Go
// benchmarks measure). This is the serving-plane acceptance number: the
// binary codec must beat gob ≥ 2× at batch 16.
func benchCodec(reps, iters, batch int) (BenchResult, error) {
	req, resp := transport.BenchBatch(batch)
	cycle := func(c transport.FrameCodec) func() error {
		var reqBuf, respBuf []byte
		return func() error {
			for i := 0; i < iters; i++ {
				var err error
				if reqBuf, err = c.AppendRequest(reqBuf[:0], req); err != nil {
					return err
				}
				if err := c.DecodeRequest(reqBuf, new(transport.DetectRequest)); err != nil {
					return err
				}
				if respBuf, err = c.AppendResponse(respBuf[:0], resp); err != nil {
					return err
				}
				if err := c.DecodeResponse(respBuf, new(transport.DetectResponse)); err != nil {
					return err
				}
			}
			return nil
		}
	}
	gobMs, err := timeIt(reps, cycle(transport.GobCodec))
	if err != nil {
		return BenchResult{}, err
	}
	binMs, err := timeIt(reps, cycle(transport.BinaryCodec))
	if err != nil {
		return BenchResult{}, err
	}
	return BenchResult{
		Name:         "codec-detectbatch-roundtrip",
		Detail:       fmt.Sprintf("OpDetectBatch encode+decode both directions, %d windows of 672×1, %d cycles", batch, iters),
		BatchSize:    batch,
		Baseline:     "gob",
		Variant:      "binary",
		SequentialMs: gobMs,
		BatchedMs:    binMs,
		Speedup:      gobMs / binMs,
	}, nil
}

// sleepDetector is the routing benchmark's stand-in model: a fixed
// per-request service time behind a mutex, so each replica behaves like a
// single-core inference server — requests routed to a busy replica queue
// behind it, which is exactly the dynamic that separates good routing from
// bad.
type sleepDetector struct {
	mu        sync.Mutex
	ServiceMs float64
}

func (*sleepDetector) Name() string { return "sleep" }

func (d *sleepDetector) Detect(frames [][]float64) (anomaly.Verdict, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	time.Sleep(time.Duration(d.ServiceMs * float64(time.Millisecond)))
	return anomaly.Verdict{}, nil
}

func (*sleepDetector) NumParams() int           { return 0 }
func (*sleepDetector) FlopsPerWindow(int) int64 { return 0 }

// benchRouting replays the inference-sim experiment at transport scale: 3
// replicas with one deliberately slow instance, 8 concurrent clients, and
// the same request stream routed by the pathological always-busiest policy
// (which herds onto one replica) vs least-in-flight (which steers around
// the slow one). The wall-clock ratio is the price of bad routing.
func benchRouting(reps, requests int) (BenchResult, error) {
	const workers = 8
	// Replica 0 is 4× slower than its peers — the degraded instance a good
	// policy must route around and always-busiest herds onto.
	var srvs []*transport.Server
	for _, serviceMs := range []float64{4, 1, 1} {
		srv, err := transport.Serve("127.0.0.1:0", &sleepDetector{ServiceMs: serviceMs}, nil)
		if err != nil {
			return BenchResult{}, err
		}
		defer srv.Close()
		srvs = append(srvs, srv)
	}
	addrs := []string{srvs[0].Addr(), srvs[1].Addr(), srvs[2].Addr()}
	frames := [][]float64{{0.5}}

	drive := func(policy routing.Policy) func() error {
		return func() error {
			set, err := routing.New(routing.Config{Addrs: addrs, PoolSize: 2, Policy: policy})
			if err != nil {
				return err
			}
			defer set.Close()
			var wg sync.WaitGroup
			errs := make(chan error, workers)
			per := requests / workers
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < per; i++ {
						if _, err := set.Detect(frames); err != nil {
							errs <- err
							return
						}
					}
				}()
			}
			wg.Wait()
			close(errs)
			return <-errs
		}
	}
	worstMs, err := timeIt(reps, drive(routing.AlwaysBusiest()))
	if err != nil {
		return BenchResult{}, err
	}
	bestMs, err := timeIt(reps, drive(routing.LeastInFlight()))
	if err != nil {
		return BenchResult{}, err
	}
	return BenchResult{
		Name:         "routing-policy-skewed-replicas",
		Detail:       fmt.Sprintf("3 replicas (4ms/1ms/1ms service), %d workers × %d requests", workers, requests/workers),
		BatchSize:    1,
		Baseline:     "always-busiest",
		Variant:      "least-in-flight",
		SequentialMs: worstMs,
		BatchedMs:    bestMs,
		Speedup:      worstMs / bestMs,
	}, nil
}

// spinDetector is the workload benchmark's stand-in model: a fixed burn
// of floating-point arithmetic per window, on the scale of a real
// IoT-tier forward pass (~20k flops), with no locks and no sleeps. The
// fleet over it is a realistic denominator for the generator-overhead
// ratio — an empty detector would measure the generator against nothing
// and make any overhead look enormous — while staying deterministic and
// contention-free so the two runs differ only by pattern sampling.
type spinDetector struct{}

func (spinDetector) Name() string { return "spin" }
func (spinDetector) Detect([][]float64) (anomaly.Verdict, error) {
	x := 1.0
	for i := 0; i < 4096; i++ {
		x += 1.0 / x
	}
	return anomaly.Verdict{Confident: x > 0}, nil
}
func (spinDetector) NumParams() int           { return 0 }
func (spinDetector) FlopsPerWindow(int) int64 { return 2 * 4096 }

// benchWorkload measures what the scenario engine's workload generator
// costs: the same IoT-local fleet run closed-loop with no pattern vs
// paced through a composite diurnal+burst pattern at BaseInterval 0 —
// identical detection work, with the variant additionally sampling the
// arrival pattern before every window (the engine samples patterns even
// unpaced, precisely so this comparison isolates generator overhead).
// Speedup = baseline/variant wall-clock; ≥ 0.95 certifies the generator
// costs < 5% of a fleet run.
func benchWorkload(reps, devices, rounds int) (BenchResult, error) {
	if reps < 3 {
		// Best-of-3 even in fast mode: the ratio compares two sub-10ms
		// runs, where a single scheduler hiccup would swamp the signal.
		reps = 3
	}
	samples := make([]hec.Sample, 32)
	for i := range samples {
		samples[i] = hec.Sample{Frames: [][]float64{{float64(i % 7)}}, Label: i%2 == 0}
	}
	dev := &cluster.Device{Local: spinDetector{}}
	run := func(p workload.Pattern) func() error {
		return func() error {
			_, err := cluster.RunFleet(context.Background(), dev, samples, cluster.FleetConfig{
				Cohorts: []workload.Cohort{{Scheme: "iot", Devices: devices, Rounds: rounds, Pattern: p}},
				Seed:    1,
			})
			return err
		}
	}
	pat := workload.Sum(
		workload.Diurnal(time.Second, 0.5, 2),
		workload.Burst(250*time.Millisecond, 0.3, 1, 4),
	)
	baseMs, err := timeIt(reps, run(nil))
	if err != nil {
		return BenchResult{}, err
	}
	patMs, err := timeIt(reps, run(pat))
	if err != nil {
		return BenchResult{}, err
	}
	return BenchResult{
		Name:         "workload-generator-overhead",
		Detail:       fmt.Sprintf("%d devices × %d rounds × %d windows, spin detector, diurnal+burst pattern unpaced", devices, rounds, len(samples)),
		BatchSize:    1,
		Baseline:     "closed-loop",
		Variant:      "patterned",
		SequentialMs: baseMs,
		BatchedMs:    patMs,
		Speedup:      baseMs / patMs,
	}, nil
}

// runBenchJSON produces the perf snapshot and writes it to path ("-" for
// stdout). fast shrinks the workloads for CI smoke runs.
func runBenchJSON(path string, fast bool) error {
	reps, weeks, samples, windows := 3, 104, 156, 16
	codecIters, routeReqs := 400, 256
	fleetDevices, fleetRounds := 64, 40
	if fast {
		reps, weeks, samples, windows = 1, 32, 48, 8
		codecIters, routeReqs = 60, 64
		fleetRounds = 10
	}
	const batch = 32
	snap := BenchSnapshot{
		Schema:     benchSchema,
		GoVersion:  runtime.Version(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Reps:       reps,
	}
	fmt.Fprintf(os.Stderr, "hecbench: measuring batched engine (fast=%v, reps=%d)...\n", fast, reps)
	for _, bench := range []func() (BenchResult, error){
		func() (BenchResult, error) { return benchTrain(reps, weeks, batch) },
		func() (BenchResult, error) { return benchPrecompute(reps, samples, batch) },
		func() (BenchResult, error) { return benchReconstruct(reps, windows) },
		func() (BenchResult, error) { return benchCodec(reps, codecIters, 16) },
		func() (BenchResult, error) { return benchRouting(reps, routeReqs) },
		func() (BenchResult, error) { return benchWorkload(reps, fleetDevices, fleetRounds) },
	} {
		res, err := bench()
		if err != nil {
			return fmt.Errorf("bench-json: %w", err)
		}
		fmt.Fprintf(os.Stderr, "  %-24s seq %8.1fms  batched %8.1fms  %5.2fx\n",
			res.Name, res.SequentialMs, res.BatchedMs, res.Speedup)
		snap.Results = append(snap.Results, res)
	}
	out, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(out)
		return err
	}
	if err := os.WriteFile(path, out, 0o644); err != nil {
		return fmt.Errorf("bench-json: %w", err)
	}
	fmt.Fprintf(os.Stderr, "hecbench: wrote %s\n", path)
	return nil
}
