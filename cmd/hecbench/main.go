// Command hecbench regenerates the paper's evaluation artifacts — Table I
// (model comparison), Table II (scheme comparison) and the Fig. 3b result
// series — on the synthetic datasets, printing rows in the paper's format.
//
// Usage:
//
//	hecbench -data univariate -table 1        # Table I, univariate suite
//	hecbench -data multivariate -table 2      # Table II, multivariate suite
//	hecbench -data univariate -table all      # everything incl. Fig. 3b
//	hecbench -fast                            # reduced scale (CI-friendly)
//	hecbench -fast -reps 8                    # Monte-Carlo: 8 seeds in
//	                                          # parallel, Table II mean±std
//	hecbench -bench-json BENCH.json           # machine-readable perf snapshot
//	                                          # of the batched tensor engine
//	hecbench -roofline BENCH.json             # kernel roofline: measured
//	                                          # compute/bandwidth ceilings and
//	                                          # each dispatch level against them
//	hecbench -sched BENCH.json                # scheduler queue disciplines on
//	                                          # the deadline-overload burst
//	                                          # (EDF vs FIFO vs pathological)
//	hecbench -dist BENCH.json                 # model distribution: binary
//	                                          # tensor codec vs legacy gob,
//	                                          # one-tensor deltas vs full
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro"
	"repro/internal/hec"
)

func main() {
	var (
		data    = flag.String("data", "univariate", "dataset: univariate | multivariate | both")
		table   = flag.String("table", "all", "artifact: 1 | 2 | fig3b | all")
		fast    = flag.Bool("fast", false, "reduced scale for quick runs")
		seed    = flag.Int64("seed", 0, "override the build seed (0 keeps defaults)")
		reps    = flag.Int("reps", 1, "Monte-Carlo repetitions over seeds seed+1..seed+reps (aggregated Table II)")
		workers = flag.Int("workers", 0, "concurrent Monte-Carlo builds (<1 = a small CPU-based default; each build is itself internally parallel)")
		bench   = flag.String("bench-json", "", "write a seq-vs-batched perf snapshot (BENCH_N.json style) to this path ('-' = stdout) and exit")
		roof    = flag.String("roofline", "", "write a kernel roofline snapshot (BENCH_N.json style) to this path ('-' = stdout) and exit")
		schedJ  = flag.String("sched", "", "write a scheduler queue-discipline comparison (deadline-overload burst, BENCH_N.json style) to this path ('-' = stdout) and exit")
		distJ   = flag.String("dist", "", "write a model-distribution comparison (binary codec vs gob, delta vs full, BENCH_N.json style) to this path ('-' = stdout) and exit")
	)
	flag.Parse()

	if *bench != "" {
		if err := runBenchJSON(*bench, *fast); err != nil {
			fmt.Fprintln(os.Stderr, "hecbench:", err)
			os.Exit(1)
		}
		return
	}
	if *roof != "" {
		if err := runRoofline(*roof, *fast); err != nil {
			fmt.Fprintln(os.Stderr, "hecbench:", err)
			os.Exit(1)
		}
		return
	}
	if *schedJ != "" {
		if err := runSchedBench(*schedJ); err != nil {
			fmt.Fprintln(os.Stderr, "hecbench:", err)
			os.Exit(1)
		}
		return
	}
	if *distJ != "" {
		if err := runDistBench(*distJ, *fast); err != nil {
			fmt.Fprintln(os.Stderr, "hecbench:", err)
			os.Exit(1)
		}
		return
	}

	kinds, err := parseKinds(*data)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hecbench:", err)
		os.Exit(2)
	}
	if *reps > 1 && *table != "2" && *table != "all" {
		fmt.Fprintf(os.Stderr, "hecbench: -table %s is not supported with -reps > 1 (Monte-Carlo aggregates Table II only)\n", *table)
		os.Exit(2)
	}
	if *reps > 1 && *seed < 0 {
		// Rep seeds are seed+1..seed+reps; a negative base could hit seed 0,
		// which buildSystem treats as "keep defaults" and would silently
		// duplicate a repetition.
		fmt.Fprintln(os.Stderr, "hecbench: -seed must be >= 0 with -reps > 1")
		os.Exit(2)
	}
	for _, kind := range kinds {
		var err error
		if *reps > 1 {
			err = runMonteCarlo(kind, *fast, *seed, *reps, *workers)
		} else {
			err = run(kind, *table, *fast, *seed)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "hecbench:", err)
			os.Exit(1)
		}
	}
}

func parseKinds(s string) ([]repro.Kind, error) {
	switch strings.ToLower(s) {
	case "univariate", "uni":
		return []repro.Kind{repro.Univariate}, nil
	case "multivariate", "multi":
		return []repro.Kind{repro.Multivariate}, nil
	case "both", "all":
		return []repro.Kind{repro.Univariate, repro.Multivariate}, nil
	default:
		return nil, fmt.Errorf("unknown -data %q", s)
	}
}

// buildSystem builds one system of the given kind through the unified
// builder; seed 0 keeps the profile defaults.
func buildSystem(kind repro.Kind, fast bool, seed int64) (*repro.System, error) {
	var opts []repro.Option
	if fast {
		opts = append(opts, repro.WithFast())
	}
	if seed != 0 {
		opts = append(opts, repro.WithSeed(seed))
	}
	return repro.Build(kind, opts...)
}

func run(kind repro.Kind, table string, fast bool, seed int64) error {
	start := time.Now()
	fmt.Printf("== building %v system (fast=%v) ==\n", kind, fast)
	sys, err := buildSystem(kind, fast, seed)
	if err != nil {
		return fmt.Errorf("building %v system: %w", kind, err)
	}
	fmt.Printf("   built in %v (%d test samples)\n\n", time.Since(start).Round(time.Millisecond), len(sys.TestSamples))

	switch strings.ToLower(table) {
	case "1":
		return printTableI(sys)
	case "2":
		return printTableII(sys)
	case "fig3b":
		return printFig3b(sys)
	case "all":
		if err := printTableI(sys); err != nil {
			return err
		}
		if err := printTableII(sys); err != nil {
			return err
		}
		return printFig3b(sys)
	default:
		return fmt.Errorf("unknown -table %q", table)
	}
}

func printTableI(sys *repro.System) error {
	rows, err := sys.ModelRows()
	if err != nil {
		return err
	}
	fmt.Printf("TABLE I (%v): comparison among AD models\n", sys.Kind)
	fmt.Printf("%-22s %6s %12s %12s %10s %14s\n", "Model", "Layer", "#Parameters", "Accuracy(%)", "F1-score", "Exec time (ms)")
	for _, r := range rows {
		fmt.Printf("%-22s %6s %12d %12.2f %10.3f %14.1f\n",
			r.Name, r.Layer, r.NumParams, r.Accuracy*100, r.F1, r.ExecMs)
	}
	fmt.Println()
	return nil
}

func printTableII(sys *repro.System) error {
	rows, err := sys.SchemeRows()
	if err != nil {
		return err
	}
	fmt.Printf("TABLE II (%v): comparison among AD model detection schemes (alpha=%g)\n", sys.Kind, sys.Alpha)
	fmt.Printf("%-12s %8s %12s %10s %10s %24s\n", "Scheme", "F1", "Accuracy(%)", "Delay(ms)", "Reward", "Layer shares IoT/Edge/Cloud")
	for _, r := range rows {
		fmt.Printf("%-12s %8.3f %12.2f %10.2f %10.2f %11.2f/%.2f/%.2f\n",
			r.Scheme, r.F1, r.Accuracy*100, r.MeanDelayMs, r.RewardSum,
			r.LayerShares[hec.LayerIoT], r.LayerShares[hec.LayerEdge], r.LayerShares[hec.LayerCloud])
	}
	// The headline claims of the paper's abstract.
	var cloud, ours *repro.SchemeRow
	for i := range rows {
		switch rows[i].Scheme {
		case "Cloud":
			cloud = &rows[i]
		case "Our Method":
			ours = &rows[i]
		}
	}
	if cloud != nil && ours != nil && cloud.MeanDelayMs > 0 {
		saving := (1 - ours.MeanDelayMs/cloud.MeanDelayMs) * 100
		fmt.Printf("-- delay reduction vs Cloud: %.1f%% (paper: 71.4%% univariate, 7.84%% multivariate)\n", saving)
		fmt.Printf("-- accuracy gap vs Cloud: %.2f pp (paper: 0.29 pp univariate, 0.40 pp multivariate)\n",
			(cloud.Accuracy-ours.Accuracy)*100)
	}
	fmt.Println()
	return nil
}

// printFig3b renders the streaming result panel for the adaptive scheme:
// per-sample prediction vs truth, delay and chosen layer, plus the running
// accuracy/F1 curves sampled at ten checkpoints.
func printFig3b(sys *repro.System) error {
	res, err := sys.ResultPanel(hec.Adaptive{Policy: sys.Policy})
	if err != nil {
		return err
	}
	fmt.Printf("FIG 3b (%v): adaptive-scheme result panel, %d samples\n", sys.Kind, len(res.Predictions))
	n := len(res.Predictions)
	show := 12
	if n < show {
		show = n
	}
	fmt.Printf("%-8s %-6s %-6s %-10s %-6s\n", "sample", "pred", "truth", "delay(ms)", "layer")
	for i := 0; i < show; i++ {
		fmt.Printf("%-8d %-6v %-6v %-10.1f %-6v\n",
			i, b2i(res.Predictions[i]), b2i(res.Truths[i]), res.DelaysMs[i], res.Layers[i])
	}
	if n > show {
		fmt.Printf("... (%d more)\n", n-show)
	}
	fmt.Println("cumulative accuracy / F1 at 10 checkpoints:")
	for c := 1; c <= 10; c++ {
		i := c*n/10 - 1
		fmt.Printf("  after %4d: acc=%.4f f1=%.4f\n", i+1, res.AccSeries[i], res.F1Series[i])
	}
	fmt.Println()
	return nil
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}
