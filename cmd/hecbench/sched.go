package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"

	"repro/internal/sched"
	"repro/internal/schedbench"
)

// schedSchema identifies the scheduler-comparison snapshot layout.
const schedSchema = "hec-sched/1"

// SchedSnapshot is the machine-readable scheduler comparison (BENCH_9.json):
// every queue discipline's showing on the canonical deadline-overload burst
// plus the two ratios CI gates on.
type SchedSnapshot struct {
	Schema     string `json:"schema"`
	GoVersion  string `json:"go_version"`
	GoMaxProcs int    `json:"go_maxprocs"`
	// Burst geometry, recorded so a reader can interpret the numbers
	// without chasing the harness source.
	Jobs      int     `json:"jobs"`
	Slots     int     `json:"slots"`
	ServiceMs float64 `json:"service_ms"`
	// Results holds one entry per policy, in run order.
	Results []schedbench.Result `json:"results"`
	// EDFOverFIFOHitRate is EDF's deadline hit-rate over FIFO's — the
	// headline discriminator, gated >= 1.3 in CI. ReverseOverEDFHitRate
	// is the pathological policy's hit-rate over EDF's, gated <= 0.85:
	// the discipline must be able to hurt as well as help, or the
	// comparison isn't measuring scheduling at all.
	EDFOverFIFOHitRate    float64 `json:"edf_over_fifo_hit_rate"`
	ReverseOverEDFHitRate float64 `json:"reverse_over_edf_hit_rate"`
}

// runSchedBench drives the canonical overload burst under every queue
// discipline and writes the comparison snapshot ('-' = stdout). The burst
// is deterministic by construction (see internal/schedbench), so the
// deltas here are CI-gateable, not vibes: EDF meets every deadline of an
// EDF-feasible burst, FIFO misses the windows it served out of deadline
// order, reverse-EDF misses more still.
func runSchedBench(path string) error {
	snap := SchedSnapshot{
		Schema:     schedSchema,
		GoVersion:  runtime.Version(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Jobs:       32,
		Slots:      1,
		ServiceMs:  10,
	}
	fmt.Fprintln(os.Stderr, "hecbench: scheduler overload burst, ~2s per policy...")
	byName := make(map[string]schedbench.Result, 4)
	for _, p := range []sched.Policy{sched.FIFO{}, sched.EDF{}, sched.SLOClass{}, sched.ReverseEDF{}} {
		res, err := schedbench.RunBurst(p)
		if err != nil {
			return fmt.Errorf("sched bench: %w", err)
		}
		fmt.Fprintf(os.Stderr, "  %-12s met %2d/%2d  hit-rate %.2f  p99-met %6.1fms  canceled %d\n",
			res.Policy, res.Met, res.Total, res.HitRate, res.P99MetMs, res.Canceled)
		snap.Results = append(snap.Results, res)
		byName[res.Policy] = res
	}
	if fifo := byName["fifo"].HitRate; fifo > 0 {
		snap.EDFOverFIFOHitRate = byName["edf"].HitRate / fifo
	}
	if edf := byName["edf"].HitRate; edf > 0 {
		snap.ReverseOverEDFHitRate = byName["reverse-edf"].HitRate / edf
	}
	out, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(out)
		return err
	}
	if err := os.WriteFile(path, out, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "hecbench: wrote %s\n", path)
	return nil
}
