package main

import (
	"fmt"
	"math"
	"runtime"
	"time"

	"repro"
	"repro/internal/parallel"
)

// runMonteCarlo builds reps systems with seeds seed+1..seed+reps
// concurrently and prints the per-scheme mean ± sample standard deviation
// of the Table II metrics — the repetition study a single-seed run cannot
// give. Each repetition regenerates its dataset, retrains every detector
// and the policy, so the spread measures the whole pipeline's seed
// sensitivity.
func runMonteCarlo(kind repro.Kind, fast bool, seed int64, reps, workers int) error {
	start := time.Now()
	// Each build already fans its precompute and tier training out across
	// the CPUs, so the outer level defaults to a small count rather than
	// one per CPU — bounding both oversubscription and the number of fully
	// trained systems resident at once.
	if workers < 1 {
		workers = min(4, runtime.GOMAXPROCS(0))
	}
	fmt.Printf("== Monte-Carlo: %d %v repetitions (fast=%v, workers=%d) ==\n",
		reps, kind, fast, parallel.Workers(workers, reps))
	fmt.Println("   (Monte-Carlo aggregates Table II only; Table I and fig3b need -reps 1)")
	rows, err := parallel.Map(workers, reps, func(i int) ([]repro.SchemeRow, error) {
		sys, err := buildSystem(kind, fast, seed+int64(i)+1)
		if err != nil {
			return nil, fmt.Errorf("rep %d: %w", i, err)
		}
		return sys.SchemeRows()
	})
	if err != nil {
		return err
	}
	fmt.Printf("   %d systems built and evaluated in %v\n\n", reps, time.Since(start).Round(time.Millisecond))

	fmt.Printf("TABLE II (%v, %d seeds): mean ± std per scheme\n", kind, reps)
	fmt.Printf("%-12s %16s %18s %22s %18s\n", "Scheme", "F1", "Accuracy(%)", "Delay(ms)", "Reward")
	for s := range rows[0] {
		name := rows[0][s].Scheme
		f1 := make([]float64, reps)
		acc := make([]float64, reps)
		delay := make([]float64, reps)
		reward := make([]float64, reps)
		for r, row := range rows {
			if row[s].Scheme != name {
				return fmt.Errorf("rep %d: scheme order diverged (%q vs %q)", r, row[s].Scheme, name)
			}
			f1[r] = row[s].F1
			acc[r] = row[s].Accuracy * 100
			delay[r] = row[s].MeanDelayMs
			reward[r] = row[s].RewardSum
		}
		fmt.Printf("%-12s %8.3f ± %.3f %10.2f ± %.2f %12.2f ± %.2f %10.2f ± %.2f\n",
			name, mean(f1), std(f1), mean(acc), std(acc), mean(delay), std(delay), mean(reward), std(reward))
	}

	// The abstract's headline claim, now with error bars.
	cloudDelay := make([]float64, reps)
	oursDelay := make([]float64, reps)
	for r, row := range rows {
		for _, sr := range row {
			switch sr.Scheme {
			case "Cloud":
				cloudDelay[r] = sr.MeanDelayMs
			case "Our Method":
				oursDelay[r] = sr.MeanDelayMs
			}
		}
	}
	saving := make([]float64, reps)
	for r := range saving {
		if cloudDelay[r] > 0 {
			saving[r] = (1 - oursDelay[r]/cloudDelay[r]) * 100
		}
	}
	fmt.Printf("-- delay reduction vs Cloud: %.1f%% ± %.1f (paper: 71.4%% univariate, 7.84%% multivariate)\n\n",
		mean(saving), std(saving))
	return nil
}

func mean(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// std is the sample standard deviation (n−1); it returns 0 for a single
// repetition.
func std(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)-1))
}
