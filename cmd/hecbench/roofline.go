package main

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"

	"repro/internal/autoencoder"
	"repro/internal/mat"
	"repro/internal/nn"
)

// The -roofline mode: measures this machine's compute and memory ceilings,
// then places every matrix micro-kernel (per dispatch level and per
// quantization tier) on the roofline so a snapshot diff shows whether a
// kernel regressed against the hardware rather than against a previous
// build. The emitted file (BENCH_8.json style) also carries the two
// CI-gated comparisons: AVX2-over-SSE2 on a batched training epoch, and
// cached packed panels over repacking on steady-state inference.

// rooflineSchema identifies the snapshot layout for downstream tooling.
const rooflineSchema = "hec-roofline/1"

// RooflinePoint is one kernel placed on the roofline model.
type RooflinePoint struct {
	// Name identifies the kernel configuration, e.g. "mulbt-f64-avx2".
	Name string `json:"name"`
	// Kernel is the dispatch level the measurement ran under.
	Kernel string `json:"kernel"`
	// Quant is the packed-panel storage format (f64, f16, i8).
	Quant string `json:"quant"`
	// Shape describes the product measured, m×k · (n×k)ᵀ.
	Shape string `json:"shape"`
	// Flops and MovedBytes are per-call work and minimum memory traffic
	// (inputs read once, outputs written once).
	Flops      int64 `json:"flops"`
	MovedBytes int64 `json:"moved_bytes"`
	// Ms is the best-of-reps wall-clock per call.
	Ms float64 `json:"ms"`
	// GFlops is the achieved throughput.
	GFlops float64 `json:"gflops"`
	// Intensity is Flops/MovedBytes, the roofline x-coordinate.
	Intensity float64 `json:"intensity_flops_per_byte"`
	// CeilingGFlops is min(peak, intensity×bandwidth) — the roofline over
	// this point.
	CeilingGFlops float64 `json:"ceiling_gflops"`
	// Bound is "compute" when the point sits right of the ridge (the
	// machine's peak caps it) and "bandwidth" when memory traffic does.
	Bound string `json:"bound"`
	// Efficiency is GFlops/CeilingGFlops.
	Efficiency float64 `json:"efficiency"`
}

// RooflineSnapshot is the file layout of -roofline.
type RooflineSnapshot struct {
	Schema     string `json:"schema"`
	GoVersion  string `json:"go_version"`
	GoMaxProcs int    `json:"gomaxprocs"`
	Reps       int    `json:"reps"`
	// Kernels lists the dispatch levels available on this CPU;
	// AVX2Available is the skip-not-fail signal for the CI speedup gate.
	Kernels       []string `json:"kernels"`
	AVX2Available bool     `json:"avx2_available"`
	// PeakGFlops is the measured compute ceiling: the widest mul+add
	// micro-kernel on L1-resident panels (not a theoretical FMA peak —
	// the repo's kernels deliberately avoid FMA for reproducibility).
	PeakGFlops float64 `json:"peak_gflops"`
	// BandwidthGBs is the measured memory ceiling: a streaming axpy over
	// buffers far beyond cache.
	BandwidthGBs float64 `json:"bandwidth_gbs"`
	// RidgeIntensity is PeakGFlops/BandwidthGBs — points left of it are
	// bandwidth-bound.
	RidgeIntensity float64 `json:"ridge_intensity"`

	Points  []RooflinePoint `json:"points"`
	Results []BenchResult   `json:"results"`
}

// withKernelRestore runs fn under the named dispatch level and restores the
// previous one.
func withKernelRestore(name string, fn func() error) error {
	prev := mat.KernelName()
	if err := mat.SetKernel(name); err != nil {
		return err
	}
	defer mat.SetKernel(prev)
	return fn()
}

func fillRand(data []float64, rng *rand.Rand) {
	for i := range data {
		data[i] = rng.NormFloat64()
	}
}

// measurePeakGFlops times the packed mul kernel on an L1-resident product
// (8×96 · (16×96)ᵀ ≈ 18 KiB of operands) under the best available dispatch
// level. The shape stays under the fan-out thresholds, so this is one
// core's ceiling — the roofline is per-core by construction, matching the
// per-goroutine kernels it bounds.
func measurePeakGFlops(reps int) (float64, error) {
	const m, k, n, iters = 8, 96, 16, 4000
	rng := rand.New(rand.NewSource(41))
	a := mat.New(m, k)
	b := mat.New(n, k)
	fillRand(a.Data, rng)
	fillRand(b.Data, rng)
	p := mat.Pack(b, mat.QuantF64)
	dst := mat.New(m, n)
	ms, err := timeIt(reps, func() error {
		for i := 0; i < iters; i++ {
			if err := mat.MulBTPackedInto(dst, a, p); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	return float64(2*m*n*k) * iters / (ms * 1e6), nil
}

// measureBandwidthGBs times a streaming axpy (read x, read y, write y: 24
// bytes per element) over 32 MiB buffers — far beyond cache, so the rate is
// main-memory bandwidth as the vector kernels see it.
func measureBandwidthGBs(reps int) (float64, error) {
	const elems = 4 << 20
	const passes = 4
	rng := rand.New(rand.NewSource(42))
	x := make([]float64, elems)
	y := make([]float64, elems)
	fillRand(x, rng)
	fillRand(y, rng)
	ms, err := timeIt(reps, func() error {
		for i := 0; i < passes; i++ {
			if err := mat.AxpyVec(0.5, x, y); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	return float64(24*elems) * passes / (ms * 1e6), nil
}

// measurePoint places one kernel configuration on the roofline: the packed
// product for an AE-Cloud-shaped layer (batch 8 × 672 against the 336×672
// first codec), measured under the currently active dispatch level with
// panels pre-packed in the given format.
func measurePoint(name string, quant mat.Quant, peak, bw float64, reps int) (RooflinePoint, error) {
	const m, k, n, iters = 8, 672, 336, 50
	rng := rand.New(rand.NewSource(43))
	a := mat.New(m, k)
	b := mat.New(n, k)
	fillRand(a.Data, rng)
	fillRand(b.Data, rng)
	if quant == mat.QuantI8 {
		// Panel packing quantizes a snapshot; quantize the matrix in place
		// first so the measurement matches deployment (weights already
		// carry the codes).
		for i := 0; i < n; i++ {
			row := b.Row(i)
			scale := mat.I8RowScale(row)
			for j, v := range row {
				row[j] = mat.QuantizeI8(v, scale)
			}
		}
	}
	p := mat.Pack(b, quant)
	dst := mat.New(m, n)
	ms, err := timeIt(reps, func() error {
		for i := 0; i < iters; i++ {
			if err := mat.MulBTPackedInto(dst, a, p); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return RooflinePoint{}, err
	}
	flops := int64(2 * m * n * k)
	bytes := int64(m*k*8+m*n*8) + int64(p.Bytes())
	perCallMs := ms / iters
	gflops := float64(flops) / (perCallMs * 1e6)
	intensity := float64(flops) / float64(bytes)
	ceiling := math.Min(peak, intensity*bw)
	bound := "compute"
	if intensity*bw < peak {
		bound = "bandwidth"
	}
	return RooflinePoint{
		Name:          name,
		Kernel:        mat.KernelName(),
		Quant:         quant.String(),
		Shape:         fmt.Sprintf("%d×%d · (%d×%d)ᵀ", m, k, n, k),
		Flops:         flops,
		MovedBytes:    bytes,
		Ms:            perCallMs,
		GFlops:        gflops,
		Intensity:     intensity,
		CeilingGFlops: ceiling,
		Bound:         bound,
		Efficiency:    gflops / ceiling,
	}, nil
}

// benchTrainKernels measures the CI-gated AVX2-over-SSE2 speedup on the
// same batched AE-Cloud training epoch -bench-json tracks, with the batched
// engine pinned to each dispatch level in turn.
func benchTrainKernels(reps, weeks int) (BenchResult, error) {
	const dim = 672
	const batch = 32
	data := benchWeeks(weeks, dim, rand.New(rand.NewSource(44)))
	epoch := func() error {
		m, err := autoencoder.New(autoencoder.TierCloud, dim, rand.New(rand.NewSource(45)))
		if err != nil {
			return err
		}
		cfg := autoencoder.DefaultTrainConfig()
		cfg.Epochs = 1
		cfg.BatchSize = batch
		_, err = m.Fit(data, cfg, rand.New(rand.NewSource(46)))
		return err
	}
	var sse2Ms, avx2Ms float64
	if err := withKernelRestore("sse2", func() (err error) {
		sse2Ms, err = timeIt(reps, epoch)
		return
	}); err != nil {
		return BenchResult{}, err
	}
	if err := withKernelRestore("avx2", func() (err error) {
		avx2Ms, err = timeIt(reps, epoch)
		return
	}); err != nil {
		return BenchResult{}, err
	}
	return BenchResult{
		Name:         "autoencoder-train-epoch",
		Detail:       fmt.Sprintf("AE-Cloud %d-wide, %d weeks, 1 epoch, batch %d, SSE2 vs AVX2 dispatch", dim, weeks, batch),
		BatchSize:    batch,
		Baseline:     "sse2",
		Variant:      "avx2",
		SequentialMs: sse2Ms,
		BatchedMs:    avx2Ms,
		Speedup:      sse2Ms / avx2Ms,
	}, nil
}

// benchPackedReuse measures what the panel cache buys steady-state
// inference: the same AE-Cloud InferBatch at serving batch size, with the
// caches invalidated before every call (the repack-per-call baseline a
// cache-less engine would pay) vs left warm.
func benchPackedReuse(reps, iters int) (BenchResult, error) {
	const dim = 672
	const batch = 8
	rng := rand.New(rand.NewSource(47))
	m, err := autoencoder.New(autoencoder.TierCloud, dim, rng)
	if err != nil {
		return BenchResult{}, err
	}
	params := m.Net.Params()
	invalidate := func() {
		for _, p := range params {
			if p.Cache != nil {
				p.Cache.Invalidate()
			}
		}
	}
	x := mat.New(batch, dim)
	fillRand(x.Data, rng)
	var ws nn.BatchScratch
	if _, err := m.Net.InferBatch(&ws, x); err != nil {
		return BenchResult{}, err
	}
	repackMs, err := timeIt(reps, func() error {
		for i := 0; i < iters; i++ {
			invalidate()
			if _, err := m.Net.InferBatch(&ws, x); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return BenchResult{}, err
	}
	invalidate()
	if _, err := m.Net.InferBatch(&ws, x); err != nil {
		return BenchResult{}, err
	}
	cachedMs, err := timeIt(reps, func() error {
		for i := 0; i < iters; i++ {
			if _, err := m.Net.InferBatch(&ws, x); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return BenchResult{}, err
	}
	return BenchResult{
		Name:         "inferbatch-packed-reuse",
		Detail:       fmt.Sprintf("AE-Cloud %d-wide InferBatch, batch %d, %d calls: repack every call vs warm panel cache", dim, batch, iters),
		BatchSize:    batch,
		Baseline:     "repack-per-call",
		Variant:      "cached-panels",
		SequentialMs: repackMs,
		BatchedMs:    cachedMs,
		Speedup:      repackMs / cachedMs,
	}, nil
}

// runRoofline produces the roofline snapshot and writes it to path ("-" for
// stdout). fast shrinks the workloads for CI smoke runs.
func runRoofline(path string, fast bool) error {
	reps, weeks, reuseIters := 3, 104, 200
	if fast {
		reps, weeks, reuseIters = 2, 32, 60
	}
	kernels := mat.AvailableKernels()
	avx2 := false
	for _, k := range kernels {
		if k == "avx2" {
			avx2 = true
		}
	}
	snap := RooflineSnapshot{
		Schema:        rooflineSchema,
		GoVersion:     runtime.Version(),
		GoMaxProcs:    runtime.GOMAXPROCS(0),
		Reps:          reps,
		Kernels:       kernels,
		AVX2Available: avx2,
	}
	fmt.Fprintf(os.Stderr, "hecbench: measuring roofline (kernel=%s, fast=%v, reps=%d)...\n", mat.KernelName(), fast, reps)

	peak, err := measurePeakGFlops(reps)
	if err != nil {
		return fmt.Errorf("roofline: peak: %w", err)
	}
	bw, err := measureBandwidthGBs(reps)
	if err != nil {
		return fmt.Errorf("roofline: bandwidth: %w", err)
	}
	snap.PeakGFlops = peak
	snap.BandwidthGBs = bw
	snap.RidgeIntensity = peak / bw
	fmt.Fprintf(os.Stderr, "  ceilings: %.2f GFLOP/s compute, %.2f GB/s bandwidth, ridge %.2f flops/byte\n", peak, bw, peak/bw)

	// One f64 point per exact dispatch level, plus the quantized tiers
	// under the default (best) level.
	for _, k := range kernels {
		if k == "neon" {
			continue // opt-in, bounded-ULP; not part of the dispatch default
		}
		err := withKernelRestore(k, func() error {
			pt, err := measurePoint("mulbt-f64-"+k, mat.QuantF64, peak, bw, reps)
			if err != nil {
				return err
			}
			snap.Points = append(snap.Points, pt)
			return nil
		})
		if err != nil {
			return fmt.Errorf("roofline: %s: %w", k, err)
		}
	}
	for _, q := range []mat.Quant{mat.QuantF16, mat.QuantI8} {
		pt, err := measurePoint("mulbt-"+q.String()+"-"+mat.KernelName(), q, peak, bw, reps)
		if err != nil {
			return fmt.Errorf("roofline: %v: %w", q, err)
		}
		snap.Points = append(snap.Points, pt)
	}
	for _, pt := range snap.Points {
		fmt.Fprintf(os.Stderr, "  %-18s %7.2f GFLOP/s  %5.2f flops/byte  %-9s bound  %4.0f%% of ceiling\n",
			pt.Name, pt.GFlops, pt.Intensity, pt.Bound, pt.Efficiency*100)
	}

	if avx2 {
		res, err := benchTrainKernels(reps, weeks)
		if err != nil {
			return fmt.Errorf("roofline: train kernels: %w", err)
		}
		fmt.Fprintf(os.Stderr, "  %-24s sse2 %8.1fms  avx2 %8.1fms  %5.2fx\n", res.Name, res.SequentialMs, res.BatchedMs, res.Speedup)
		snap.Results = append(snap.Results, res)
	} else {
		fmt.Fprintln(os.Stderr, "  avx2 unavailable; skipping dispatch-level speedup")
	}
	res, err := benchPackedReuse(reps, reuseIters)
	if err != nil {
		return fmt.Errorf("roofline: packed reuse: %w", err)
	}
	fmt.Fprintf(os.Stderr, "  %-24s repack %6.1fms  cached %6.1fms  %5.2fx\n", res.Name, res.SequentialMs, res.BatchedMs, res.Speedup)
	snap.Results = append(snap.Results, res)

	out, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(out)
		return err
	}
	if err := os.WriteFile(path, out, 0o644); err != nil {
		return fmt.Errorf("roofline: %w", err)
	}
	fmt.Fprintf(os.Stderr, "hecbench: wrote %s\n", path)
	return nil
}
