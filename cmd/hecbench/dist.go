package main

import (
	"bytes"
	"context"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"time"

	"repro/internal/anomaly"
	"repro/internal/autoencoder"
	"repro/internal/cluster"
	"repro/internal/nn"
	"repro/internal/transport"
)

// distSchema identifies the model-distribution snapshot layout.
const distSchema = "hec-dist/1"

// DistSnapshot is the machine-readable model-distribution comparison
// (BENCH_10.json): the legacy gob snapshot transfer against the canonical
// binary tensor codec, full fetches against one-tensor deltas, measured on
// a real loopback server with the int8-quantized AE-Cloud the fleet ships.
type DistSnapshot struct {
	Schema     string `json:"schema"`
	GoVersion  string `json:"go_version"`
	GoMaxProcs int    `json:"go_maxprocs"`
	// Model geometry, recorded so a reader can interpret the byte counts
	// without chasing the harness source.
	ModelKind  string `json:"model_kind"`
	ModelTier  string `json:"model_tier"`
	InputDim   int    `json:"input_dim"`
	Params     int    `json:"params"`
	Tensors    int    `json:"tensors"`
	Quantized  bool   `json:"quantized"`
	ChunkBytes int    `json:"chunk_bytes"`

	// Bytes on the wire. FullGobBytes is the legacy whole-snapshot gob
	// payload; FullBinaryBytes the canonical tensor layout for the same
	// model; DeltaBinaryBytes a one-tensor delta (header + the single
	// changed tensor) against the previous version.
	FullGobBytes     int `json:"full_gob_bytes"`
	FullBinaryBytes  int `json:"full_binary_bytes"`
	DeltaBinaryBytes int `json:"delta_binary_bytes"`
	DeltaTensors     int `json:"delta_tensors"`

	// Loopback latencies (best of several reps): the legacy gob fetch, the
	// chunked binary fetch, and a version-probe + delta refresh.
	LegacyFetchMs   float64 `json:"legacy_fetch_ms"`
	ChunkedFetchMs  float64 `json:"chunked_fetch_ms"`
	DeltaRefreshMs  float64 `json:"delta_refresh_ms"`
	ProbeUpToDateMs float64 `json:"probe_up_to_date_ms"`

	// FullFetchReduction is gob bytes over binary bytes for the whole
	// snapshot — gated >= 3 in CI (the int8 panels gob ships as ~3.3-byte
	// floats travel as ~1 byte each in the canonical layout).
	// DeltaReduction is the full binary fetch over the one-tensor delta —
	// gated >= 10 in CI: rolling one tensor must not cost a model.
	FullFetchReduction float64 `json:"full_fetch_reduction"`
	DeltaReduction     float64 `json:"delta_reduction"`
}

// distModel builds the detector the distribution bench ships: an AE-Cloud
// int8-quantized the way PR 8's inference tier quantizes fleet models, with
// a scorer fitted on synthetic reconstruction errors (the bench measures
// transfer, not detection, but snapshots require a fitted model).
func distModel(inputDim int) (*autoencoder.Model, error) {
	rng := rand.New(rand.NewSource(10))
	m, err := autoencoder.New(autoencoder.TierCloud, inputDim, rng)
	if err != nil {
		return nil, err
	}
	errs := make([][]float64, 64)
	for i := range errs {
		errs[i] = []float64{0.05 + 0.01*float64(i)}
	}
	scorer, err := anomaly.FitScorer(errs, 1e-6)
	if err != nil {
		return nil, err
	}
	m.Scorer = scorer
	m.QuantizeMode(nn.QuantInt8)
	return m, nil
}

// timeBest runs fn reps times and returns the best wall-clock in ms — the
// usual bench convention for loopback RPC, where the floor is the signal
// and the tail is scheduler noise.
func timeBest(reps int, fn func() error) (float64, error) {
	best := 0.0
	for i := 0; i < reps; i++ {
		start := time.Now()
		if err := fn(); err != nil {
			return 0, err
		}
		ms := float64(time.Since(start)) / float64(time.Millisecond)
		if i == 0 || ms < best {
			best = ms
		}
	}
	return best, nil
}

// runDistBench measures the model-distribution path end to end and writes
// the snapshot ('-' = stdout). Byte counts are deterministic (fixed seed,
// canonical layout); latencies are loopback best-of-N.
func runDistBench(path string, fast bool) error {
	reps := 10
	if fast {
		reps = 5
	}
	m, err := distModel(672)
	if err != nil {
		return fmt.Errorf("dist bench: %w", err)
	}
	snap, err := cluster.SnapshotDetector(m, "Cloud", true)
	if err != nil {
		return fmt.Errorf("dist bench: %w", err)
	}

	// Byte counts: the legacy path gob-encodes the whole snapshot; the
	// distribution path ships the canonical tensor layout, chunked.
	var gobBuf bytes.Buffer
	if err := gob.NewEncoder(&gobBuf).Encode(snap); err != nil {
		return fmt.Errorf("dist bench: gob: %w", err)
	}
	payload, err := transport.EncodeModel(snap, nil)
	if err != nil {
		return fmt.Errorf("dist bench: %w", err)
	}
	baseMan, err := transport.ManifestOf(snap)
	if err != nil {
		return fmt.Errorf("dist bench: %w", err)
	}

	// The rolled version: one bias nudged, as a recalibration would. The
	// delta is the header plus that single tensor.
	next, err := transport.DecodeModel(payload)
	if err != nil {
		return fmt.Errorf("dist bench: %w", err)
	}
	last := len(next.Weights.Values) - 1
	for i := range next.Weights.Values[last] {
		next.Weights.Values[last][i] += 0.5
	}
	nextMan, err := transport.ManifestOf(next)
	if err != nil {
		return fmt.Errorf("dist bench: %w", err)
	}
	want := nextMan.Diff(baseMan)
	delta, err := transport.EncodeModel(next, want)
	if err != nil {
		return fmt.Errorf("dist bench: %w", err)
	}

	out := DistSnapshot{
		Schema:     distSchema,
		GoVersion:  runtime.Version(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		ModelKind:  snap.Kind, ModelTier: snap.Tier,
		InputDim: snap.InputDim, Params: m.NumParams(),
		Tensors: len(snap.Weights.Values), Quantized: snap.Quantized,
		ChunkBytes:       transport.DefaultModelChunkBytes,
		FullGobBytes:     gobBuf.Len(),
		FullBinaryBytes:  len(payload),
		DeltaBinaryBytes: len(delta),
		DeltaTensors:     len(want),
	}
	out.FullFetchReduction = float64(out.FullGobBytes) / float64(out.FullBinaryBytes)
	out.DeltaReduction = float64(out.FullBinaryBytes) / float64(out.DeltaBinaryBytes)

	// Loopback latencies against a real server, old wire format vs new.
	srv, err := transport.ServeWith("127.0.0.1:0", m, transport.ServerOptions{Model: snap})
	if err != nil {
		return fmt.Errorf("dist bench: %w", err)
	}
	defer srv.Close()
	cli, err := transport.Dial(srv.Addr(), 0)
	if err != nil {
		return fmt.Errorf("dist bench: %w", err)
	}
	defer cli.Close()
	ctx := context.Background()

	fmt.Fprintf(os.Stderr, "hecbench: model distribution on %s (%d params, int8), %d reps per path...\n",
		m.Name(), m.NumParams(), reps)
	if out.LegacyFetchMs, err = timeBest(reps, func() error {
		_, err := cli.FetchModelFullContext(ctx)
		return err
	}); err != nil {
		return fmt.Errorf("dist bench: legacy fetch: %w", err)
	}
	if out.ChunkedFetchMs, err = timeBest(reps, func() error {
		_, err := cli.FetchModelContext(ctx)
		return err
	}); err != nil {
		return fmt.Errorf("dist bench: chunked fetch: %w", err)
	}
	if out.ProbeUpToDateMs, err = timeBest(reps, func() error {
		_, upToDate, err := cli.RefreshModelContext(ctx, snap)
		if err == nil && !upToDate {
			return fmt.Errorf("steady-state refresh was not a version match")
		}
		return err
	}); err != nil {
		return fmt.Errorf("dist bench: probe: %w", err)
	}
	if err := srv.UpdateModel(m, nil, next); err != nil {
		return fmt.Errorf("dist bench: %w", err)
	}
	if out.DeltaRefreshMs, err = timeBest(reps, func() error {
		got, upToDate, err := cli.RefreshModelContext(ctx, snap)
		if err != nil {
			return err
		}
		if upToDate || got == nil {
			return fmt.Errorf("delta refresh did not ship a model")
		}
		return nil
	}); err != nil {
		return fmt.Errorf("dist bench: delta refresh: %w", err)
	}

	fmt.Fprintf(os.Stderr, "  full: gob %d B vs binary %d B (%.2fx)  delta: %d B over %d tensor(s) (%.1fx vs full)\n",
		out.FullGobBytes, out.FullBinaryBytes, out.FullFetchReduction,
		out.DeltaBinaryBytes, out.DeltaTensors, out.DeltaReduction)
	fmt.Fprintf(os.Stderr, "  latency: legacy %.2fms  chunked %.2fms  delta %.2fms  probe %.3fms\n",
		out.LegacyFetchMs, out.ChunkedFetchMs, out.DeltaRefreshMs, out.ProbeUpToDateMs)

	enc, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(enc)
		return err
	}
	if err := os.WriteFile(path, enc, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "hecbench: wrote %s\n", path)
	return nil
}
