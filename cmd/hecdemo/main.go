// Command hecdemo is the terminal equivalent of the paper's GUI demo
// (Fig. 3): it builds a system, then streams the result panel — per-sample
// raw-signal summary, detection vs ground truth, delay and chosen layer,
// and the running accuracy/F1 — for a user-selected scheme, with tunable
// dataset fractions, exactly the knobs the GUI exposes.
//
// Usage:
//
//	hecdemo -data univariate -scheme adaptive -rate 20
//	hecdemo -data multivariate -scheme successive -anomaly-fraction 0.5
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"time"

	"repro"
	"repro/internal/hec"
	"repro/internal/mat"
)

func main() {
	var (
		data     = flag.String("data", "univariate", "dataset: univariate | multivariate")
		scheme   = flag.String("scheme", "adaptive", "scheme: iot | edge | cloud | successive | adaptive")
		rate     = flag.Float64("rate", 50, "samples per second to stream (0 = no pacing)")
		fraction = flag.Float64("anomaly-fraction", -1, "resample the test stream to this anomaly fraction (-1 keeps the split)")
		fast     = flag.Bool("fast", true, "reduced-scale build")
		limit    = flag.Int("limit", 0, "stop after N samples (0 = all)")
	)
	flag.Parse()
	if err := run(*data, *scheme, *rate, *fraction, *fast, *limit); err != nil {
		fmt.Fprintln(os.Stderr, "hecdemo:", err)
		os.Exit(1)
	}
}

func run(data, schemeName string, rate, fraction float64, fast bool, limit int) error {
	fmt.Printf("building %s system...\n", data)
	var sys *repro.System
	var err error
	switch strings.ToLower(data) {
	case "univariate", "uni":
		opt := repro.DefaultUnivariateOptions()
		if fast {
			opt = repro.FastUnivariateOptions()
		}
		sys, err = repro.BuildUnivariate(opt)
	case "multivariate", "multi":
		opt := repro.DefaultMultivariateOptions()
		if fast {
			opt = repro.FastMultivariateOptions()
		}
		sys, err = repro.BuildMultivariate(opt)
	default:
		return fmt.Errorf("unknown -data %q", data)
	}
	if err != nil {
		return err
	}

	var sch hec.Scheme
	switch strings.ToLower(schemeName) {
	case "iot":
		sch = hec.Fixed{Layer: hec.LayerIoT}
	case "edge":
		sch = hec.Fixed{Layer: hec.LayerEdge}
	case "cloud":
		sch = hec.Fixed{Layer: hec.LayerCloud}
	case "successive":
		sch = hec.Successive{}
	case "adaptive", "ours":
		sch = hec.Adaptive{Policy: sys.Policy}
	default:
		return fmt.Errorf("unknown -scheme %q", schemeName)
	}

	res, err := sys.ResultPanel(sch)
	if err != nil {
		return err
	}
	order := streamOrder(res, fraction)
	if limit > 0 && limit < len(order) {
		order = order[:limit]
	}

	fmt.Printf("\n=== %s | scheme: %s | %d samples ===\n", data, sch.Name(), len(order))
	fmt.Printf("%-6s %-28s %-5s %-5s %-10s %-6s %-18s\n",
		"i", "signal (min/mean/max)", "det", "truth", "delay(ms)", "layer", "cumulative acc/F1")
	var pace time.Duration
	if rate > 0 {
		pace = time.Duration(float64(time.Second) / rate)
	}
	var conf cumulative
	for n, i := range order {
		sig := signalSummary(sys.TestSamples[i].Frames)
		conf.add(res.Predictions[i], res.Truths[i])
		marker := " "
		if res.Predictions[i] != res.Truths[i] {
			marker = "✗"
		}
		fmt.Printf("%-6d %-28s %-5d %-5d %-10.1f %-6v acc=%.3f f1=%.3f %s\n",
			n, sig, b2i(res.Predictions[i]), b2i(res.Truths[i]),
			res.DelaysMs[i], res.Layers[i], conf.accuracy(), conf.f1(), marker)
		if pace > 0 {
			time.Sleep(pace)
		}
	}
	fmt.Printf("\nfinal: %d samples, accuracy %.4f, F1 %.4f, mean delay %.1f ms\n",
		len(order), conf.accuracy(), conf.f1(), meanAt(res, order))
	shares := res.LayerShares()
	fmt.Printf("layer shares: IoT %.2f / Edge %.2f / Cloud %.2f\n",
		shares[hec.LayerIoT], shares[hec.LayerEdge], shares[hec.LayerCloud])
	return nil
}

// streamOrder returns the indices to stream. With fraction in [0,1] it
// resamples (with replacement) to approximate the requested anomaly share,
// mimicking the GUI's normal/abnormal sliders; -1 keeps the natural split.
func streamOrder(res *hec.Result, fraction float64) []int {
	n := len(res.Truths)
	if fraction < 0 || fraction > 1 {
		order := make([]int, n)
		for i := range order {
			order[i] = i
		}
		return order
	}
	var anomalies, normals []int
	for i, truth := range res.Truths {
		if truth {
			anomalies = append(anomalies, i)
		} else {
			normals = append(normals, i)
		}
	}
	if len(anomalies) == 0 || len(normals) == 0 {
		order := make([]int, n)
		for i := range order {
			order[i] = i
		}
		return order
	}
	rng := rand.New(rand.NewSource(99))
	order := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if rng.Float64() < fraction {
			order = append(order, anomalies[rng.Intn(len(anomalies))])
		} else {
			order = append(order, normals[rng.Intn(len(normals))])
		}
	}
	return order
}

func signalSummary(frames [][]float64) string {
	flat := make([]float64, 0, len(frames))
	for _, f := range frames {
		flat = append(flat, f[0])
	}
	min, max := mat.MinMaxVec(flat)
	return fmt.Sprintf("%7.2f /%7.2f /%7.2f", min, mat.MeanVec(flat), max)
}

type cumulative struct{ tp, fp, tn, fn int }

func (c *cumulative) add(pred, truth bool) {
	switch {
	case pred && truth:
		c.tp++
	case pred && !truth:
		c.fp++
	case !pred && !truth:
		c.tn++
	default:
		c.fn++
	}
}

func (c *cumulative) accuracy() float64 {
	t := c.tp + c.fp + c.tn + c.fn
	if t == 0 {
		return 0
	}
	return float64(c.tp+c.tn) / float64(t)
}

func (c *cumulative) f1() float64 {
	if c.tp == 0 {
		return 0
	}
	p := float64(c.tp) / float64(c.tp+c.fp)
	r := float64(c.tp) / float64(c.tp+c.fn)
	return 2 * p * r / (p + r)
}

func meanAt(res *hec.Result, order []int) float64 {
	if len(order) == 0 {
		return 0
	}
	var s float64
	for _, i := range order {
		s += res.DelaysMs[i]
	}
	return s / float64(len(order))
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}
