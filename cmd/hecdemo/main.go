// Command hecdemo is the terminal equivalent of the paper's GUI demo
// (Fig. 3): it builds a system, opens a streaming detection Session, and
// judges the test stream window by window — per-sample raw-signal summary,
// detection vs ground truth, delay and chosen layer, and the running
// accuracy/F1 — for a user-selected scheme, with tunable dataset
// fractions, exactly the knobs the GUI exposes. ^C cancels the stream
// mid-flight through the session's context.
//
// Usage:
//
//	hecdemo -data univariate -scheme adaptive -rate 20
//	hecdemo -data multivariate -scheme successive -anomaly-fraction 0.5
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro"
	"repro/internal/hec"
	"repro/internal/mat"
	"repro/internal/parallel"
)

func main() {
	var (
		data     = flag.String("data", "univariate", "dataset: univariate | multivariate")
		scheme   = flag.String("scheme", "adaptive", "scheme: iot | edge | cloud | successive | adaptive")
		rate     = flag.Float64("rate", 50, "samples per second to stream (0 = no pacing)")
		fraction = flag.Float64("anomaly-fraction", -1, "resample the test stream to this anomaly fraction (-1 keeps the split)")
		fast     = flag.Bool("fast", true, "reduced-scale build")
		limit    = flag.Int("limit", 0, "stop after N samples (0 = all)")
	)
	flag.Parse()
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, *data, *scheme, *rate, *fraction, *fast, *limit); err != nil {
		fmt.Fprintln(os.Stderr, "hecdemo:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, data, schemeName string, rate, fraction float64, fast bool, limit int) error {
	var kind repro.Kind
	switch strings.ToLower(data) {
	case "univariate", "uni":
		kind = repro.Univariate
	case "multivariate", "multi":
		kind = repro.Multivariate
	default:
		return fmt.Errorf("unknown -data %q", data)
	}
	var opts []repro.Option
	if fast {
		opts = append(opts, repro.WithFast())
	}
	fmt.Printf("building %s system...\n", data)
	sys, err := repro.BuildContext(ctx, kind, opts...)
	if err != nil {
		return err
	}

	if strings.EqualFold(schemeName, "ours") {
		schemeName = "adaptive" // the paper's name for its own method
	}
	scheme, err := repro.ParseScheme(strings.ToLower(schemeName))
	if err != nil {
		return err
	}

	// Open a streaming session and judge the stream online, window by
	// window — the live form of the GUI demo. The default session serves
	// every tier in-process with the calibrated delay model, so the
	// numbers line up with Table II.
	sess, err := sys.Open(scheme)
	if err != nil {
		return err
	}
	defer sess.Close()

	labels := make([]bool, len(sys.TestSamples))
	for i, s := range sys.TestSamples {
		labels[i] = s.Label
	}
	order := streamOrder(labels, fraction)
	if limit > 0 && limit < len(order) {
		order = order[:limit]
	}

	fmt.Printf("\n=== %s | scheme: %s | %d samples ===\n", data, scheme, len(order))
	fmt.Printf("%-6s %-28s %-5s %-5s %-10s %-6s %-18s\n",
		"i", "signal (min/mean/max)", "det", "truth", "delay(ms)", "layer", "cumulative acc/F1")
	var pace time.Duration
	if rate > 0 {
		pace = time.Duration(float64(time.Second) / rate)
	}
	var (
		conf        cumulative
		delaySum    float64
		layerCounts [hec.NumLayers]int
		streamed    int
	)
	for n, i := range order {
		det, err := sess.Detect(ctx, sys.TestSamples[i].Frames)
		if errors.Is(err, repro.ErrCanceled) {
			fmt.Println("\nstream cancelled")
			break
		}
		if err != nil {
			return err
		}
		truth := labels[i]
		sig := signalSummary(sys.TestSamples[i].Frames)
		conf.add(det.Anomaly, truth)
		delaySum += det.DelayMs
		layerCounts[det.Layer]++
		streamed++
		marker := " "
		if det.Anomaly != truth {
			marker = "✗"
		}
		fmt.Printf("%-6d %-28s %-5d %-5d %-10.1f %-6v acc=%.3f f1=%.3f %s\n",
			n, sig, b2i(det.Anomaly), b2i(truth),
			det.DelayMs, det.Layer, conf.accuracy(), conf.f1(), marker)
		if pace > 0 && parallel.Sleep(ctx, pace) != nil {
			fmt.Println("\nstream cancelled")
			break
		}
	}
	if streamed == 0 {
		return nil
	}
	fmt.Printf("\nfinal: %d samples, accuracy %.4f, F1 %.4f, mean delay %.1f ms\n",
		streamed, conf.accuracy(), conf.f1(), delaySum/float64(streamed))
	fmt.Printf("layer shares: IoT %.2f / Edge %.2f / Cloud %.2f\n",
		float64(layerCounts[hec.LayerIoT])/float64(streamed),
		float64(layerCounts[hec.LayerEdge])/float64(streamed),
		float64(layerCounts[hec.LayerCloud])/float64(streamed))
	return nil
}

// streamOrder returns the indices to stream. With fraction in [0,1] it
// resamples (with replacement) to approximate the requested anomaly share,
// mimicking the GUI's normal/abnormal sliders; -1 keeps the natural split.
func streamOrder(labels []bool, fraction float64) []int {
	n := len(labels)
	if fraction < 0 || fraction > 1 {
		order := make([]int, n)
		for i := range order {
			order[i] = i
		}
		return order
	}
	var anomalies, normals []int
	for i, truth := range labels {
		if truth {
			anomalies = append(anomalies, i)
		} else {
			normals = append(normals, i)
		}
	}
	if len(anomalies) == 0 || len(normals) == 0 {
		order := make([]int, n)
		for i := range order {
			order[i] = i
		}
		return order
	}
	rng := rand.New(rand.NewSource(99))
	order := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if rng.Float64() < fraction {
			order = append(order, anomalies[rng.Intn(len(anomalies))])
		} else {
			order = append(order, normals[rng.Intn(len(normals))])
		}
	}
	return order
}

func signalSummary(frames [][]float64) string {
	flat := make([]float64, 0, len(frames))
	for _, f := range frames {
		flat = append(flat, f[0])
	}
	min, max := mat.MinMaxVec(flat)
	return fmt.Sprintf("%7.2f /%7.2f /%7.2f", min, mat.MeanVec(flat), max)
}

type cumulative struct{ tp, fp, tn, fn int }

func (c *cumulative) add(pred, truth bool) {
	switch {
	case pred && truth:
		c.tp++
	case pred && !truth:
		c.fp++
	case !pred && !truth:
		c.tn++
	default:
		c.fn++
	}
}

func (c *cumulative) accuracy() float64 {
	t := c.tp + c.fp + c.tn + c.fn
	if t == 0 {
		return 0
	}
	return float64(c.tp+c.tn) / float64(t)
}

func (c *cumulative) f1() float64 {
	if c.tp == 0 {
		return 0
	}
	p := float64(c.tp) / float64(c.tp+c.fp)
	r := float64(c.tp) / float64(c.tp+c.fn)
	return 2 * p * r / (p + r)
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}
