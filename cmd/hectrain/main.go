// Command hectrain trains one model of the univariate suite and writes its
// weights as a gob snapshot, reproducing the paper's offline training +
// freeze step. Snapshots restore into a freshly built architecture of the
// same tier (see internal/nn.Snapshot), which is how hecnode-style services
// would ship weights instead of retraining.
//
// Usage:
//
//	hectrain -tier cloud -epochs 40 -o ae-cloud.gob
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"repro/internal/autoencoder"
	"repro/internal/dataset"
	"repro/internal/nn"
)

func main() {
	var (
		tierName = flag.String("tier", "iot", "model tier: iot | edge | cloud")
		epochs   = flag.Int("epochs", 25, "training epochs")
		weeks    = flag.Int("weeks", 104, "training weeks of synthetic power data")
		seed     = flag.Int64("seed", 1, "training seed")
		out      = flag.String("o", "", "output snapshot path (default ae-<tier>.gob)")
		quantize = flag.Bool("fp16", false, "FP16-compress before saving (paper's IoT/edge deployment step)")
	)
	flag.Parse()
	if err := run(*tierName, *epochs, *weeks, *seed, *out, *quantize); err != nil {
		fmt.Fprintln(os.Stderr, "hectrain:", err)
		os.Exit(1)
	}
}

func run(tierName string, epochs, weeks int, seed int64, out string, quantize bool) error {
	var tier autoencoder.Tier
	switch strings.ToLower(tierName) {
	case "iot":
		tier = autoencoder.TierIoT
	case "edge":
		tier = autoencoder.TierEdge
	case "cloud":
		tier = autoencoder.TierCloud
	default:
		return fmt.Errorf("unknown -tier %q", tierName)
	}
	if out == "" {
		out = fmt.Sprintf("ae-%s.gob", strings.ToLower(tierName))
	}

	cfg := dataset.DefaultPowerConfig()
	cfg.TrainWeeks = weeks
	cfg.Seed = seed
	ds, err := dataset.GeneratePower(cfg)
	if err != nil {
		return err
	}
	train := make([][]float64, len(ds.Train))
	for i, s := range ds.Train {
		train[i] = s.Values
	}

	rng := rand.New(rand.NewSource(seed))
	m, err := autoencoder.New(tier, dataset.ReadingsPerWeek, rng)
	if err != nil {
		return err
	}
	tc := autoencoder.DefaultTrainConfig()
	tc.Epochs = epochs
	fmt.Printf("training %s on %d weeks for %d epochs...\n", m.Name(), weeks, epochs)
	loss, err := m.Fit(train, tc, rng)
	if err != nil {
		return err
	}
	fmt.Printf("final training loss %.5f, threshold %.2f\n", loss, m.Scorer.Threshold)
	if quantize {
		worst := m.Quantize()
		fmt.Printf("FP16-compressed (worst rounding error %.2g)\n", worst)
	}

	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	snap := nn.TakeSnapshot(m.Net.Params())
	if err := snap.Encode(f); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d parameters)\n", out, m.NumParams())
	return nil
}
