package repro

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/autoencoder"
	"repro/internal/dataset"
	"repro/internal/hec"
	"repro/internal/mat"
	"repro/internal/policy"
	"repro/internal/rnn"
	"repro/internal/seq2seq"
)

// The Table/Figure benchmarks below regenerate the paper's evaluation
// artifacts. Building a system (data generation + model training + policy
// training) happens once per dataset via sync.Once; the measured loop is
// the evaluation step, and the regenerated rows are printed on first use so
// `go test -bench=. -benchmem` doubles as the reproduction harness.
//
// Build scale: paper-faithful splits with training budgets bounded for
// pure-Go BPTT (see DefaultUnivariateOptions / DefaultMultivariateOptions).

var (
	uniOnce sync.Once
	uniSys  *System
	uniErr  error

	multiOnce sync.Once
	multiSys  *System
	multiErr  error
)

func univariateSystem(b *testing.B) *System {
	b.Helper()
	uniOnce.Do(func() {
		opt := DefaultUnivariateOptions()
		uniSys, uniErr = BuildUnivariate(opt)
	})
	if uniErr != nil {
		b.Fatal(uniErr)
	}
	return uniSys
}

func multivariateSystem(b *testing.B) *System {
	b.Helper()
	multiOnce.Do(func() {
		opt := DefaultMultivariateOptions()
		// Bound BPTT cost: ~400 training windows keep the full multivariate
		// build under a few minutes in pure Go while covering every subject.
		opt.MaxTrainWindows = 400
		opt.Train.Epochs = 6
		multiSys, multiErr = BuildMultivariate(opt)
	})
	if multiErr != nil {
		b.Fatal(multiErr)
	}
	return multiSys
}

func printTableIOnce(b *testing.B, sys *System, printed *sync.Once) {
	b.Helper()
	printed.Do(func() {
		rows, err := sys.ModelRows()
		if err != nil {
			b.Fatal(err)
		}
		b.Logf("TABLE I (%v)", sys.Kind)
		for _, r := range rows {
			b.Logf("%-22s layer=%-5s params=%7d acc=%6.2f%% f1=%.3f exec=%7.1fms",
				r.Name, r.Layer, r.NumParams, r.Accuracy*100, r.F1, r.ExecMs)
		}
	})
}

func printTableIIOnce(b *testing.B, sys *System, printed *sync.Once) {
	b.Helper()
	printed.Do(func() {
		rows, err := sys.SchemeRows()
		if err != nil {
			b.Fatal(err)
		}
		b.Logf("TABLE II (%v, alpha=%g)", sys.Kind, sys.Alpha)
		for _, r := range rows {
			b.Logf("%-12s f1=%.3f acc=%6.2f%% delay=%8.2fms reward=%8.2f shares=%.2f/%.2f/%.2f",
				r.Scheme, r.F1, r.Accuracy*100, r.MeanDelayMs, r.RewardSum,
				r.LayerShares[0], r.LayerShares[1], r.LayerShares[2])
		}
	})
}

var (
	tableIUniPrinted    sync.Once
	tableIMultiPrinted  sync.Once
	tableIIUniPrinted   sync.Once
	tableIIMultiPrinted sync.Once
	fig3bPrinted        sync.Once
)

// BenchmarkTableIUnivariate regenerates Table I (univariate): per-model
// parameters, accuracy, F1 and execution time. The measured loop is the
// model-row computation over the precomputed test split.
func BenchmarkTableIUnivariate(b *testing.B) {
	sys := univariateSystem(b)
	printTableIOnce(b, sys, &tableIUniPrinted)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.ModelRows(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableIMultivariate regenerates Table I (multivariate).
func BenchmarkTableIMultivariate(b *testing.B) {
	sys := multivariateSystem(b)
	printTableIOnce(b, sys, &tableIMultiPrinted)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.ModelRows(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableIIUnivariate regenerates Table II (univariate): all five
// schemes' F1, accuracy, delay and summed reward.
func BenchmarkTableIIUnivariate(b *testing.B) {
	sys := univariateSystem(b)
	printTableIIOnce(b, sys, &tableIIUniPrinted)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.SchemeRows(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableIIMultivariate regenerates Table II (multivariate).
func BenchmarkTableIIMultivariate(b *testing.B) {
	sys := multivariateSystem(b)
	printTableIIOnce(b, sys, &tableIIMultiPrinted)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.SchemeRows(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3bSeries regenerates the demo result panel's streaming series
// (prediction vs truth, per-sample delay and action, cumulative accuracy
// and F1) for the adaptive scheme on the univariate system.
func BenchmarkFig3bSeries(b *testing.B) {
	sys := univariateSystem(b)
	fig3bPrinted.Do(func() {
		res, err := sys.ResultPanel(hec.Adaptive{Policy: sys.Policy})
		if err != nil {
			b.Fatal(err)
		}
		n := len(res.AccSeries)
		b.Logf("FIG 3b (univariate, adaptive): %d samples", n)
		for c := 1; c <= 5; c++ {
			i := c*n/5 - 1
			b.Logf("after %3d samples: acc=%.4f f1=%.4f", i+1, res.AccSeries[i], res.F1Series[i])
		}
		shares := res.LayerShares()
		b.Logf("layer shares IoT/Edge/Cloud = %.2f/%.2f/%.2f", shares[0], shares[1], shares[2])
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.ResultPanel(hec.Adaptive{Policy: sys.Policy}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationAlphaSweep sweeps the delay-cost weight α and reports
// how the adaptive policy's layer distribution shifts — the DESIGN.md
// ablation of the accuracy/delay tradeoff knob.
func BenchmarkAblationAlphaSweep(b *testing.B) {
	sys := univariateSystem(b)
	alphas := []float64{1e-4, 5e-4, 2e-3}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, a := range alphas {
			cfg := hec.DefaultPolicyConfig(a)
			cfg.Epochs = 3
			rng := rand.New(rand.NewSource(7))
			pol, err := hec.TrainPolicy(sys.Precomputed(), cfg, rng)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := hec.Evaluate(context.Background(), hec.Adaptive{Policy: pol}, sys.Precomputed(), a); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// --- Parallel evaluation engine ---------------------------------------

// BenchmarkPrecomputeSequential measures the hot path of every build — all
// three detectors over the full test split — pinned to one worker and
// per-sample detection: the legacy engine, kept as the baseline the batched
// numbers are judged against.
func BenchmarkPrecomputeSequential(b *testing.B) {
	benchmarkPrecompute(b, hec.PrecomputeOptions{Workers: 1, BatchSize: 1})
}

// BenchmarkPrecomputeBatched is the same workload on one worker with the
// vectorised detection path (the default batch size): the isolated win of
// the batched tensor engine, which must be ≥ 2× over the sequential
// baseline (the committed BENCH_3.json records the measured ratio).
func BenchmarkPrecomputeBatched(b *testing.B) {
	benchmarkPrecompute(b, hec.PrecomputeOptions{Workers: 1})
}

// BenchmarkPrecomputeParallel is the production configuration: batched
// detection fanned out across one worker per CPU.
func BenchmarkPrecomputeParallel(b *testing.B) {
	benchmarkPrecompute(b, hec.PrecomputeOptions{})
}

func benchmarkPrecompute(b *testing.B, opt hec.PrecomputeOptions) {
	sys := univariateSystem(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hec.PrecomputeWith(context.Background(), sys.Deployment, sys.Extractor, sys.TestSamples, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSchemeEvaluationSequential evaluates the five Table II schemes
// one after another; BenchmarkSchemeEvaluationParallel runs them through
// ParallelEvaluate, the engine behind SchemeRows.
func BenchmarkSchemeEvaluationSequential(b *testing.B) {
	sys := univariateSystem(b)
	schemes := hec.AllSchemes(sys.Policy)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range schemes {
			if _, err := hec.Evaluate(context.Background(), s, sys.Precomputed(), sys.Alpha); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkSchemeEvaluationParallel is the concurrent counterpart.
func BenchmarkSchemeEvaluationParallel(b *testing.B) {
	sys := univariateSystem(b)
	schemes := hec.AllSchemes(sys.Policy)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hec.ParallelEvaluate(context.Background(), schemes, sys.Precomputed(), sys.Alpha); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Micro-benchmarks for the substrates ------------------------------

// BenchmarkAEForward measures one AE-Cloud inference on a weekly window,
// the dominant cost of the univariate pipeline.
func BenchmarkAEForward(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	m, err := autoencoder.New(autoencoder.TierCloud, dataset.ReadingsPerWeek, rng)
	if err != nil {
		b.Fatal(err)
	}
	x := make([]float64, dataset.ReadingsPerWeek)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Net.Forward(x, false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLSTMSeq2SeqReconstruct measures one LSTM-seq2seq-IoT window
// reconstruction (128×18), the dominant cost of the multivariate pipeline.
func BenchmarkLSTMSeq2SeqReconstruct(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	m, err := rnn.NewSeq2Seq(rnn.Config{InSize: dataset.Channels, HiddenSize: 16}, rng)
	if err != nil {
		b.Fatal(err)
	}
	w := make([][]float64, dataset.WindowSize)
	for t := range w {
		f := make([]float64, dataset.Channels)
		for j := range f {
			f[j] = rng.NormFloat64()
		}
		w[t] = f
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Reconstruct(w); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPolicyDecision measures one adaptive decision: context softmax
// through the 100-hidden-unit policy network — the per-sample overhead the
// IoT device pays for adaptivity.
func BenchmarkPolicyDecision(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	net, err := policy.NewNetwork(28, 100, 3, rng)
	if err != nil {
		b.Fatal(err)
	}
	z := make([]float64, 28)
	for i := range z {
		z[i] = rng.NormFloat64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := net.Greedy(z); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGaussianLogPDF measures the 18-dimensional anomaly-score kernel.
func BenchmarkGaussianLogPDF(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	samples := make([][]float64, 500)
	for i := range samples {
		s := make([]float64, 18)
		for j := range s {
			s[j] = rng.NormFloat64()
		}
		samples[i] = s
	}
	g, err := mat.FitGaussian(samples, 1e-6)
	if err != nil {
		b.Fatal(err)
	}
	x := samples[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.LogPDF(x); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSeq2SeqTrainStep measures one teacher-forced BPTT step of the
// smallest seq2seq model — the unit of training cost the harness budgets.
func BenchmarkSeq2SeqTrainStep(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	m, err := seq2seq.New(seq2seq.TierIoT, seq2seq.Sizing{InSize: 18, BaseHidden: 16, DropRate: 0.3}, rng)
	if err != nil {
		b.Fatal(err)
	}
	w := make([][]float64, 64)
	for t := range w {
		f := make([]float64, 18)
		for j := range f {
			f[j] = rng.NormFloat64()
		}
		w[t] = f
	}
	cfg := seq2seq.DefaultTrainConfig()
	cfg.Epochs = 1
	train := [][][]float64{w}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Fit(train, cfg, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// Guard: the benchmark systems must satisfy the paper's structural claims
// wherever the reproduction supports them; failures print loudly without
// failing the bench (shape is asserted strictly in EXPERIMENTS.md runs).
func BenchmarkShapeChecks(b *testing.B) {
	sys := univariateSystem(b)
	rows, err := sys.ModelRows()
	if err != nil {
		b.Fatal(err)
	}
	if !(rows[0].NumParams < rows[1].NumParams && rows[1].NumParams < rows[2].NumParams) {
		b.Errorf("univariate params not increasing: %d %d %d", rows[0].NumParams, rows[1].NumParams, rows[2].NumParams)
	}
	if !(rows[0].ExecMs > rows[1].ExecMs && rows[1].ExecMs > rows[2].ExecMs) {
		b.Errorf("univariate exec times not decreasing: %g %g %g", rows[0].ExecMs, rows[1].ExecMs, rows[2].ExecMs)
	}
	sch, err := sys.SchemeRows()
	if err != nil {
		b.Fatal(err)
	}
	byName := map[string]SchemeRow{}
	for _, r := range sch {
		byName[r.Scheme] = r
	}
	if !(byName["IoT Device"].MeanDelayMs < byName["Edge"].MeanDelayMs &&
		byName["Edge"].MeanDelayMs < byName["Cloud"].MeanDelayMs) {
		b.Error("fixed-scheme delays not increasing up the hierarchy")
	}
	if byName["Our Method"].MeanDelayMs >= byName["Cloud"].MeanDelayMs {
		b.Error("adaptive scheme does not reduce delay vs cloud")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = fmt.Sprintf("%v", byName["Our Method"].RewardSum)
	}
}
