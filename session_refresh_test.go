package repro

import (
	"context"
	"errors"
	"testing"

	"repro/internal/cluster"
	"repro/internal/hec"
	"repro/internal/transport"
)

// TestSessionRefreshModel is the end-to-end hot-swap test: a session
// streaming local (IoT-tier) detections pulls a refreshed detector from a
// model-serving tier and swaps it in with zero restarts. The refreshed
// snapshot carries a cranked detection threshold, so the swap is observable
// as a verdict flip on the same window; a second refresh against the
// unchanged tier must skip the download entirely (version match).
func TestSessionRefreshModel(t *testing.T) {
	sys := fastUniSystem(t)
	det := sys.Deployment.Detectors[hec.LayerIoT]

	snap, err := cluster.SnapshotDetector(det, "IoT", false)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := transport.ServeWith("127.0.0.1:0", det, transport.ServerOptions{Model: snap})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	sess, err := sys.Open(SchemeIoT, WithRemoteAddr(LayerCloud, srv.Addr(), 0))
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	ctx := context.Background()
	win := sys.TestSamples[0].Frames

	before, err := sess.Detect(ctx, win)
	if err != nil {
		t.Fatal(err)
	}

	// First refresh: the session holds no distributed snapshot yet, so the
	// full model ships. The served snapshot equals the deployed detector,
	// so verdicts must not change across the swap.
	updated, err := sess.RefreshModel(ctx, LayerCloud)
	if err != nil {
		t.Fatal(err)
	}
	if !updated {
		t.Fatal("first refresh must ship and apply a model")
	}
	after, err := sess.Detect(ctx, win)
	if err != nil {
		t.Fatal(err)
	}
	if after.Anomaly != before.Anomaly || after.Confident != before.Confident {
		t.Fatalf("identical model changed the verdict across the swap: %+v vs %+v", after, before)
	}

	// Steady state: same version on both ends, nothing ships, no swap.
	if updated, err = sess.RefreshModel(ctx, LayerCloud); err != nil || updated {
		t.Fatalf("steady-state refresh: updated=%v err=%v, want false nil", updated, err)
	}

	// The tier rolls to a recalibrated model: same weights, a threshold so
	// high every window judges anomalous. The delta ships zero tensors
	// (header only) and the swap must flip the verdict on the live session.
	retuned, err := cluster.SnapshotDetector(det, "IoT", false)
	if err != nil {
		t.Fatal(err)
	}
	retuned.Scorer.Threshold = 1e18
	if err := srv.UpdateModel(det, nil, retuned); err != nil {
		t.Fatal(err)
	}
	if updated, err = sess.RefreshModel(ctx, LayerCloud); err != nil || !updated {
		t.Fatalf("post-update refresh: updated=%v err=%v, want true nil", updated, err)
	}
	flipped, err := sess.Detect(ctx, win)
	if err != nil {
		t.Fatal(err)
	}
	if !flipped.Anomaly {
		t.Fatalf("cranked threshold did not flip the verdict: %+v", flipped)
	}
	if flipped.Layer != LayerIoT {
		t.Fatalf("refreshed detection ran at %v, want local", flipped.Layer)
	}

	// Layers that cannot serve models are ErrBadInput, not panics.
	if _, err := sess.RefreshModel(ctx, LayerIoT); !errors.Is(err, ErrBadInput) {
		t.Fatalf("IoT-layer refresh: err = %v, want ErrBadInput", err)
	}
	if _, err := sess.RefreshModel(ctx, LayerEdge); !errors.Is(err, ErrBadInput) {
		t.Fatalf("in-process tier refresh: err = %v, want ErrBadInput", err)
	}
}
